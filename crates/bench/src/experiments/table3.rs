//! Table 3 — I/O contention among VM domains (§5.5).
//!
//! Two RUBiS instances run in two Xen domains on one physical machine.
//! VMs isolate faults, memory and (here) CPU, but both domains' block I/O
//! funnels through the shared domain-0 back-end — so two I/O-intensive
//! tenants collapse each other (paper: 97 WIPS → 30 WIPS, 1.5 s → 4.8 s).
//! Removing the single heaviest query context (SearchItemsByRegion, 87%
//! of the I/O accesses) from domain 2 restores domain 1 almost to
//! baseline.
//!
//! The paper performed this removal manually after inspecting the logs
//! ("our current techniques do not allow us to automate the diagnosis of
//! this case"); the harness does the same, and reports the per-class I/O
//! shares that justify the choice.

use odlb_cluster::{Simulation, SimulationConfig};
use odlb_engine::EngineConfig;
use odlb_metrics::{AppId, MetricKind, Sla};
use odlb_sim::SimTime;
use odlb_storage::DomainId;
use odlb_workload::rubis::{rubis_workload, RubisConfig, SEARCH_ITEMS_BY_REGION};
use odlb_workload::{ClientConfig, LoadFunction};

/// One row of Table 3 (application 1's view, the domain-1 tenant).
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// Mean latency (s).
    pub latency_s: f64,
    /// Throughput (q/s).
    pub throughput: f64,
}

/// The scenario's three placements.
#[derive(Clone, Debug)]
pub struct Table3Result {
    /// RUBiS in domain 1, domain 2 idle.
    pub baseline: Table3Row,
    /// RUBiS in both domains (worst interval).
    pub contended: Table3Row,
    /// Domain 2 without SearchItemsByRegion.
    pub after_removal: Table3Row,
    /// SearchItemsByRegion's share of domain-2's I/O page traffic before
    /// the removal (paper: 0.87).
    pub sibr_io_share: f64,
    /// Domain-0 disk utilisation during contention.
    pub contended_io_utilisation: f64,
}

/// Runs the scenario; phases in 10 s intervals.
pub fn run(
    clients: usize,
    baseline_intervals: usize,
    contended_intervals: usize,
    recovery_intervals: usize,
) -> Table3Result {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 3_3007,
        ..Default::default()
    });
    let server = sim.add_server(4);
    // Two database instances in two VM domains on one machine: separate
    // pools, separate CPU shares (the station has cores to spare), shared
    // domain-0 I/O path.
    let inst1 = sim.add_instance(server, DomainId(1), EngineConfig::default());
    let inst2 = sim.add_instance(server, DomainId(2), EngineConfig::default());
    let app1 = sim.add_app(
        rubis_workload(RubisConfig {
            app: AppId(0),
            ..Default::default()
        }),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(clients),
    );
    let join_at = SimTime::from_secs((baseline_intervals * 10) as u64);
    let app2 = sim.add_app(
        rubis_workload(RubisConfig {
            app: AppId(1),
            ..Default::default()
        }),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Step {
            before: 0,
            after: clients,
            at: join_at,
        },
    );
    sim.assign_replica(app1, inst1);
    sim.assign_replica(app2, inst2);
    sim.start();

    let row = |outcome: &odlb_cluster::IntervalOutcome| Table3Row {
        latency_s: outcome.app_latency[&app1].unwrap_or(f64::NAN),
        throughput: outcome.app_throughput[&app1],
    };

    let mut result = Table3Result {
        baseline: Table3Row {
            latency_s: f64::NAN,
            throughput: 0.0,
        },
        contended: Table3Row {
            latency_s: 0.0,
            throughput: f64::INFINITY,
        },
        after_removal: Table3Row {
            latency_s: f64::NAN,
            throughput: 0.0,
        },
        sibr_io_share: 0.0,
        contended_io_utilisation: 0.0,
    };

    for _ in 0..baseline_intervals {
        let outcome = sim.run_interval();
        if outcome.app_latency[&app1].is_some() {
            result.baseline = row(&outcome);
        }
    }

    for _ in 0..contended_intervals {
        let outcome = sim.run_interval();
        if let Some(lat) = outcome.app_latency[&app1] {
            if lat > result.contended.latency_s {
                result.contended = row(&outcome);
                result.contended_io_utilisation = outcome.servers[0].io_utilisation;
            }
        }
        // Administrator's-eye diagnosis: per-class I/O traffic on domain
        // 2, in transferred pages (a read-ahead request carries a whole
        // 64-page extent, so requests alone understate scan traffic).
        let pages_of = |v: &odlb_metrics::MetricVector| {
            v[MetricKind::IoRequests] + 63.0 * v[MetricKind::ReadAheads]
        };
        let report2 = &outcome.reports[&inst2];
        let total_io: f64 = report2.per_class.values().map(pages_of).sum();
        if total_io > 0.0 {
            let sibr = odlb_metrics::ClassId::new(AppId(1), SEARCH_ITEMS_BY_REGION as u32);
            let sibr_io = report2.per_class.get(&sibr).map(pages_of).unwrap_or(0.0);
            result.sibr_io_share = sibr_io / total_io;
        }
    }

    // The remedy: remove the heaviest I/O context from domain 2, exactly
    // the paper's third row ("RUBiS-1").
    sim.set_class_weight(app2, SEARCH_ITEMS_BY_REGION, 0.0);
    for _ in 0..recovery_intervals {
        let outcome = sim.run_interval();
        if outcome.app_latency[&app1].is_some() {
            result.after_removal = row(&outcome);
        }
    }
    result
}

/// Renders the table in the paper's layout.
/// The paper-scale run as a self-contained figure job: returns the
/// rendered table the experiments suite prints.
pub fn figure() -> String {
    render(&run(40, 8, 8, 10))
}

pub fn render(r: &Table3Result) -> String {
    let mut out = String::new();
    out.push_str("Table 3: Effect of I/O contention among different domains\n\n");
    out.push_str(&format!(
        "{:<34}{:>12}{:>16}\n",
        "Placement (domain-1 / domain-2)", "Latency (s)", "Tput (q/s)"
    ));
    let line = |label: &str, row: &Table3Row| {
        format!(
            "{:<34}{:>12.2}{:>16.2}\n",
            label, row.latency_s, row.throughput
        )
    };
    out.push_str(&line("RUBiS / IDLE", &r.baseline));
    out.push_str(&line("RUBiS / RUBiS", &r.contended));
    out.push_str(&line("RUBiS / RUBiS-1", &r.after_removal));
    out.push_str(&format!(
        "\nDiagnosis: domain-0 disk utilisation {:.0}% under contention;\n\
         SearchItemsByRegion contributes {:.0}% of domain-2's I/O page traffic\n\
         (paper: 87%), so it is the first context removed.\n",
        r.contended_io_utilisation * 100.0,
        r.sibr_io_share * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_contention_collapse_and_recovery() {
        let r = run(40, 6, 6, 8);
        assert!(
            r.contended.latency_s > r.baseline.latency_s * 2.0,
            "contention must hurt: {:.2}s -> {:.2}s",
            r.baseline.latency_s,
            r.contended.latency_s
        );
        assert!(
            r.sibr_io_share > 0.5,
            "SearchItemsByRegion dominates I/O ({:.2})",
            r.sibr_io_share
        );
        assert!(
            r.after_removal.latency_s < r.contended.latency_s / 1.5,
            "removal must recover: {:.2}s vs {:.2}s",
            r.after_removal.latency_s,
            r.contended.latency_s
        );
    }
}
