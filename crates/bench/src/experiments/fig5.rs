//! Fig. 5 — the miss ratio curve of BestSeller under the normal (indexed)
//! configuration.
//!
//! Paper: a descending curve with a knee; acceptable memory 6982 pages.
//! Ours is calibrated to the same shape (acceptable ≈ 6850 pages under a
//! 5% threshold in an 8192-page pool).

use crate::experiments::mrc_common::{class_mrc, MrcResult};
use odlb_workload::tpcw::{tpcw_workload, TpcwConfig, BESTSELLER};

/// Runs the Fig. 5 experiment: `queries` BestSeller executions traced
/// through Mattson's algorithm.
pub fn run(queries: usize) -> MrcResult {
    let workload = tpcw_workload(TpcwConfig::default());
    class_mrc(&workload, BESTSELLER, queries, 8192, 0.05, 2007)
}

/// The paper-scale run as a self-contained figure job: returns the
/// rendered table the experiments suite prints.
pub fn figure() -> String {
    crate::experiments::mrc_common::render(&run(120))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let r = run(60);
        // Large but cacheable working set, near the paper's 6982 pages.
        assert!(
            (5_500..=8_192).contains(&r.params.acceptable_memory_needed),
            "acceptable {}",
            r.params.acceptable_memory_needed
        );
        // The curve actually descends: memory helps.
        let first = r.curve.first().unwrap().1;
        let last = r.curve.last().unwrap().1;
        assert!(first > last + 0.3, "knee exists: {first:.2} -> {last:.2}");
    }
}
