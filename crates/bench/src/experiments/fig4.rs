//! Fig. 4 — dropping the `O_DATE` index (§5.3).
//!
//! TPC-W runs alone and reaches stable state; then the index used by
//! BestSeller's plan is dropped. The figure plots, per query class, the
//! ratio of the current measured value to the stable state average for
//! four metrics: latency, throughput, misses, read-ahead. The paper's
//! observations to reproduce:
//!
//! * latency up / throughput down broadly (everyone suffers through the
//!   shared pool and disk);
//! * misses up broadly;
//! * read-ahead spikes sharply for only a few classes (the new scan);
//! * outlier detection flags a handful of mild outliers including
//!   BestSeller (#8) and NewProducts (#9);
//! * MRC recomputation then isolates BestSeller as the one class whose
//!   parameters changed, and a quota is enforced for it.

use odlb_cluster::{Simulation, SimulationConfig};
use odlb_core::{Action, ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb_engine::EngineConfig;
use odlb_metrics::{MetricKind, Sla};
use odlb_storage::DomainId;
use odlb_telemetry::{SharedSpanProfiler, Telemetry};
use odlb_trace::Tracer;
use odlb_workload::tpcw::{bestseller_pattern, tpcw_workload, TpcwConfig, BESTSELLER};
use odlb_workload::{ClientConfig, LoadFunction};
use std::collections::BTreeMap;

/// Per-class deviation ratios at the violated interval.
#[derive(Clone, Debug)]
pub struct Fig4Result {
    /// Per class template index: [latency, throughput, misses, readahead]
    /// ratios current/stable.
    pub ratios: BTreeMap<u32, [f64; 4]>,
    /// Outlier contexts (template indices) the detector flagged.
    pub outlier_contexts: Vec<u32>,
    /// Counts of mild/extreme findings.
    pub mild: usize,
    /// Extreme findings.
    pub extreme: usize,
    /// Classes whose recomputed MRC changed significantly.
    pub mrc_changed: Vec<u32>,
    /// TPC-W mean latency before the drop (stable state).
    pub latency_before: f64,
    /// TPC-W mean latency at the violated interval.
    pub latency_after_drop: f64,
    /// TPC-W mean latency after the controller's action settled.
    pub latency_after_action: f64,
    /// All non-detection actions taken, rendered.
    pub actions: Vec<String>,
}

/// Runs the scenario. `clients` TPC-W sessions; `stable_intervals` of
/// warm-up + stable-state recording before the drop; up to
/// `recovery_intervals` afterwards.
pub fn run(clients: usize, stable_intervals: usize, recovery_intervals: usize) -> Fig4Result {
    run_with(Tracer::new(), clients, stable_intervals, recovery_intervals)
}

/// [`run`] with a decision tracer attached to the driver and controller
/// (the golden-trace suite and the `--trace` flag go through here).
pub fn run_with(
    tracer: Tracer,
    clients: usize,
    stable_intervals: usize,
    recovery_intervals: usize,
) -> Fig4Result {
    run_instrumented(
        tracer,
        Telemetry::inactive(),
        None,
        clients,
        stable_intervals,
        recovery_intervals,
    )
}

/// The paper-scale run as a self-contained figure job: 50 clients,
/// 12 stable intervals, up to 15 recovery intervals.
pub fn figure_instrumented(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
) -> Fig4Result {
    run_instrumented(tracer, telemetry, profiler, 50, 12, 15)
}

/// [`run_with`] plus runtime telemetry: the metrics registry is attached
/// to the driver and controller, and the optional profiler times the
/// controller phases. Telemetry is observation-only — the result and run
/// digest are identical to an uninstrumented run.
pub fn run_instrumented(
    tracer: Tracer,
    telemetry: Telemetry,
    profiler: Option<SharedSpanProfiler>,
    clients: usize,
    stable_intervals: usize,
    recovery_intervals: usize,
) -> Fig4Result {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 4_2007,
        ..Default::default()
    });
    let server = sim.add_server(4);
    let inst = sim.add_instance(server, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(clients),
    );
    sim.assign_replica(app, inst);
    sim.set_tracer(tracer.clone());
    if telemetry.is_active() {
        sim.set_telemetry(telemetry.clone());
    }
    if let Some(profiler) = &profiler {
        sim.set_profiler(profiler.clone());
    }
    sim.start();

    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    controller.set_tracer(tracer.clone());
    if telemetry.is_active() {
        controller.set_telemetry(telemetry.clone());
    }
    if let Some(profiler) = profiler {
        controller.set_profiler(profiler);
    }
    let mut latency_before = f64::NAN;
    let mut stable_metrics: BTreeMap<u32, [f64; 4]> = BTreeMap::new();
    for _ in 0..stable_intervals {
        let outcome = sim.run_interval();
        controller.on_interval(&mut sim, &outcome);
        if let Some(lat) = outcome.app_latency[&app] {
            latency_before = lat;
        }
        for (class, v) in &outcome.reports[&inst].per_class {
            stable_metrics.insert(
                class.template,
                [
                    v[MetricKind::Latency],
                    v[MetricKind::Throughput],
                    v[MetricKind::BufferMisses],
                    v[MetricKind::ReadAheads],
                ],
            );
        }
    }

    // Drop the O_DATE index: BestSeller's plan degenerates into a scan.
    sim.set_class_pattern(app, BESTSELLER, bestseller_pattern(false));

    let mut result = Fig4Result {
        ratios: BTreeMap::new(),
        outlier_contexts: Vec::new(),
        mild: 0,
        extreme: 0,
        mrc_changed: Vec::new(),
        latency_before,
        latency_after_drop: f64::NAN,
        latency_after_action: f64::NAN,
        actions: Vec::new(),
    };
    let mut captured = false;
    for _ in 0..recovery_intervals {
        let outcome = sim.run_interval();
        let violated = outcome.sla[&app].is_violation();
        if violated && !captured {
            captured = true;
            result.latency_after_drop = outcome.app_latency[&app].unwrap_or(f64::NAN);
            let report = &outcome.reports[&inst];
            for (class, v) in &report.per_class {
                let cur = [
                    v[MetricKind::Latency],
                    v[MetricKind::Throughput],
                    v[MetricKind::BufferMisses],
                    v[MetricKind::ReadAheads],
                ];
                let stable = stable_metrics
                    .get(&class.template)
                    .copied()
                    .unwrap_or([f64::NAN; 4]);
                let ratio = |c: f64, s: f64| if s.abs() < 1e-12 { f64::NAN } else { c / s };
                result.ratios.insert(
                    class.template,
                    [
                        ratio(cur[0], stable[0]),
                        ratio(cur[1], stable[1]),
                        ratio(cur[2], stable[2]),
                        ratio(cur[3], stable[3]),
                    ],
                );
            }
        }
        for action in controller.on_interval(&mut sim, &outcome) {
            match &action {
                Action::DetectedOutliers {
                    contexts,
                    mild,
                    extreme,
                    ..
                } if result.outlier_contexts.is_empty() => {
                    result.outlier_contexts = contexts.iter().map(|c| c.template).collect();
                    result.mild = *mild;
                    result.extreme = *extreme;
                }
                Action::RecomputedMrc { class, changed, .. } => {
                    if *changed && !result.mrc_changed.contains(&class.template) {
                        result.mrc_changed.push(class.template);
                    }
                    result.actions.push(action.to_string());
                }
                Action::DetectedOutliers { .. } => {}
                _ => result.actions.push(action.to_string()),
            }
        }
        if let Some(lat) = outcome.app_latency[&app] {
            result.latency_after_action = lat;
        }
    }
    tracer.flush();
    result
}

/// Renders the four ratio panels plus the diagnosis summary.
pub fn render(r: &Fig4Result) -> String {
    let mut out = String::new();
    out.push_str("Fig. 4: Dropping the O_DATE Index — current / stable ratios per query class\n\n");
    out.push_str(&format!(
        "{:>8}  {:>10} {:>11} {:>9} {:>11} {:>13}\n",
        "class", "latency", "throughput", "misses", "readahead", "misses/query"
    ));
    for (class, ratios) in &r.ratios {
        out.push_str(&format!(
            "{:>8}  {:>10.2} {:>11.2} {:>9.2} {:>11.2} {:>13.2}{}\n",
            format!("#{class}"),
            ratios[0],
            ratios[1],
            ratios[2],
            ratios[3],
            // Interval counters shrink when throughput collapses (closed
            // loop); per-query normalisation shows the per-execution cost
            // rise the paper's open-loop counters show directly.
            ratios[2] / ratios[1],
            if *class == BESTSELLER as u32 {
                "   <- BestSeller"
            } else if *class == 9 {
                "   <- NewProducts"
            } else {
                ""
            }
        ));
    }
    out.push_str(&format!(
        "\nLatency: stable {:.3}s -> after drop {:.3}s -> after action {:.3}s\n",
        r.latency_before, r.latency_after_drop, r.latency_after_action
    ));
    out.push_str(&format!(
        "Outlier contexts: {:?} ({} mild, {} extreme)\n",
        r.outlier_contexts, r.mild, r.extreme
    ));
    out.push_str(&format!("MRC significantly changed: {:?}\n", r.mrc_changed));
    out.push_str("Actions:\n");
    for a in &r.actions {
        out.push_str(&format!("  {a}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_drop_is_detected_and_bestseller_isolated() {
        let r = run(50, 12, 12);
        // The drop degrades latency noticeably.
        assert!(
            r.latency_after_drop > r.latency_before * 1.5,
            "drop must hurt: {:.3} -> {:.3}",
            r.latency_before,
            r.latency_after_drop
        );
        // BestSeller's read-ahead ratio explodes relative to others.
        let bs = r.ratios[&(BESTSELLER as u32)];
        assert!(
            bs[3] > 3.0 || bs[3].is_nan(),
            "BestSeller readahead ratio {}",
            bs[3]
        );
        // Outlier detection flags BestSeller among its contexts.
        assert!(
            r.outlier_contexts.contains(&(BESTSELLER as u32)),
            "BestSeller must be an outlier context: {:?}",
            r.outlier_contexts
        );
        // The MRC recheck singles out BestSeller as changed.
        assert!(
            r.mrc_changed.contains(&(BESTSELLER as u32)),
            "changed MRCs: {:?}",
            r.mrc_changed
        );
    }
}
