//! Fig. 6 — the miss ratio curve of RUBiS SearchItemsByRegion.
//!
//! Paper: acceptable memory ≈ 7906 pages — the class cannot co-locate with
//! TPC-W in a shared 8192-page pool ("only the BestSeller of TPC-W needs
//! at least 6982 pages"), which drives the Table 2 re-placement.

use crate::experiments::mrc_common::{class_mrc, MrcResult};
use odlb_workload::rubis::{rubis_workload, RubisConfig, SEARCH_ITEMS_BY_REGION};

/// Runs the Fig. 6 experiment.
pub fn run(queries: usize) -> MrcResult {
    let workload = rubis_workload(RubisConfig::default());
    class_mrc(
        &workload,
        SEARCH_ITEMS_BY_REGION,
        queries,
        10_000,
        0.05,
        2007,
    )
}

/// The paper-scale run as a self-contained figure job: returns the
/// rendered table the experiments suite prints.
pub fn figure() -> String {
    crate::experiments::mrc_common::render(&run(300))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let r = run(150);
        assert!(
            (6_500..=9_500).contains(&r.params.acceptable_memory_needed),
            "acceptable {} (paper: 7906)",
            r.params.acceptable_memory_needed
        );
        // Cannot co-locate with BestSeller's ~7k in an 8192-page pool.
        assert!(r.params.acceptable_memory_needed + 6_000 > 8_192);
    }
}
