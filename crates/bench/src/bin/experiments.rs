//! The experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [fig3|fig3-mini|fig4|fig5|fig6|table1|table2|table3|
//!              fig-scale|fig-scale-mini|
//!              ablation-fences|ablation-weights|ablation-coarse|
//!              ablation-mrc-threshold|ablation-mrc-approx|
//!              ablation-mrc-sampled|all]
//!             [--jobs <N>] [--trace <path>] [--metrics <dir>]
//!             [--profile-folded <path>] [--bench-json]
//! experiments --list
//! experiments sweep <matrix.toml> [--out <dir>] [--jobs <N>]
//!             [--no-memo] [--max-cells <K>] [--bench-json]
//! ```
//!
//! `--list` prints the figure/ablation registry (name, traced/counted
//! flags, description) — the authoritative metadata sweep matrices and
//! CI selections are authored against.
//!
//! `sweep <matrix.toml>` runs a parameter matrix as a resumable
//! jobserver: cells are content-addressed under `<out>/cells/` (default
//! `sweep-<name>/`), completed cells are skipped on restart, cells
//! sharing a workload key replay one memoized schedule (`--no-memo`
//! regenerates per cell), and `--max-cells <K>` stops resumably after
//! `K` cells. Completed sweeps merge `sweep.csv` + `summary.txt` in
//! canonical cell order, byte-identical at any `--jobs` count and
//! across interrupt/resume. See EXPERIMENTS.md, "Parameter sweeps".
//!
//! Every figure is a self-contained job from the registry in
//! `odlb_bench::suite`; `--jobs <N>` runs up to `N` of them concurrently
//! on the ordered worker pool in `odlb_bench::runner` (default: one per
//! hardware thread, `--jobs 1` = fully sequential). Outputs are
//! committed in canonical sequential order whatever the job count, so
//! stdout, `--trace` JSONL files, `--metrics` snapshots, and all run
//! digests are byte-identical to a sequential run — parallelism lives
//! entirely *between* isolated simulations, never inside one.
//!
//! The controller-driven figures (fig3, fig4) run with a decision tracer
//! attached and print their run digest — the 64-bit FNV-1a fold of the
//! canonical event stream — so two runs can be compared at a glance.
//! `--trace <path>` additionally writes the full event stream as JSONL
//! (when more than one figure runs, the figure name is suffixed to the
//! path).
//!
//! `--metrics <dir>` attaches the runtime telemetry registry to the
//! controller-driven figures and writes one Prometheus text snapshot
//! (`<figure>.prom`) and one CSV time series (`<figure>.csv`) per
//! figure. Metric values derive only from simulation state, so two
//! same-seed runs write byte-identical artifacts. The controller-
//! overhead report (real wall-clock timings, merged across all
//! instrumented figures) goes to *stderr*, keeping stdout deterministic.
//! `fig3-mini` is a miniature fig3 used by the CI smoke test.
//!
//! `--profile-folded <path>` attaches the span profiler to the
//! controller-driven figures and writes the merged *sim-unit* folded
//! stack dump (inferno / `flamegraph.pl` input) to `<path>`. Sim units
//! derive only from simulation state (interval counts, simulated
//! microseconds, page counts), so the dump is byte-identical across
//! runs and job counts — profiles merge by stack path at commit time.
//! The wall-clock folded dump and flat overhead report go to *stderr*;
//! stdout and all artifacts stay byte-identical to an unprofiled run.
//!
//! `--bench-json` records per-figure and total wall-clock time into
//! `BENCH_experiments.json` (the `Bench::named` JSON shape), with every
//! entry prefixed `jobs=<N>/`, so the parallel speedup is diffable
//! across commits.
//!
//! `--serve <port>` additionally serves the live exposition at
//! `GET http://127.0.0.1:<port>/metrics` (port 0 = ephemeral; the bound
//! port is printed on startup). Each instrumented figure's final
//! exposition is published when the figure commits, in canonical order,
//! so serving leaves artifacts and digests byte-identical.
//! `--serve-hold <ms>` keeps the process alive after the run until one
//! scrape lands (or the timeout passes) — the CI smoke test uses it to
//! fetch without racing the run.

use odlb_bench::harness::Bench;
use odlb_bench::{runner, suite, sweep};
use odlb_telemetry::{MetricsServer, SpanProfiler};
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_dir: Option<String> = None;
    let mut profile_folded: Option<String> = None;
    let mut bench_json = false;
    let mut serve_port: Option<u16> = None;
    let mut serve_hold_ms: u64 = 0;
    let mut list = false;
    let mut sweep_out: Option<String> = None;
    let mut no_memo = false;
    let mut max_cells: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" {
            let Some(n) = args
                .get(i + 1)
                .and_then(|p| p.parse().ok())
                .filter(|&n| n > 0)
            else {
                eprintln!("--jobs requires a positive worker count");
                std::process::exit(2);
            };
            jobs = Some(n);
            i += 2;
        } else if args[i] == "--trace" {
            if i + 1 >= args.len() {
                eprintln!("--trace requires a path");
                std::process::exit(2);
            }
            trace_path = Some(args[i + 1].clone());
            i += 2;
        } else if args[i] == "--metrics" {
            if i + 1 >= args.len() {
                eprintln!("--metrics requires a directory");
                std::process::exit(2);
            }
            metrics_dir = Some(args[i + 1].clone());
            i += 2;
        } else if args[i] == "--profile-folded" {
            if i + 1 >= args.len() {
                eprintln!("--profile-folded requires a path");
                std::process::exit(2);
            }
            profile_folded = Some(args[i + 1].clone());
            i += 2;
        } else if args[i] == "--bench-json" {
            bench_json = true;
            i += 1;
        } else if args[i] == "--serve" {
            let Some(port) = args.get(i + 1).and_then(|p| p.parse().ok()) else {
                eprintln!("--serve requires a port (0 = ephemeral)");
                std::process::exit(2);
            };
            serve_port = Some(port);
            i += 2;
        } else if args[i] == "--serve-hold" {
            let Some(ms) = args.get(i + 1).and_then(|p| p.parse().ok()) else {
                eprintln!("--serve-hold requires a duration in milliseconds");
                std::process::exit(2);
            };
            serve_hold_ms = ms;
            i += 2;
        } else if args[i] == "--list" {
            list = true;
            i += 1;
        } else if args[i] == "--out" {
            if i + 1 >= args.len() {
                eprintln!("--out requires a directory");
                std::process::exit(2);
            }
            sweep_out = Some(args[i + 1].clone());
            i += 2;
        } else if args[i] == "--no-memo" {
            no_memo = true;
            i += 1;
        } else if args[i] == "--max-cells" {
            let Some(n) = args
                .get(i + 1)
                .and_then(|p| p.parse().ok())
                .filter(|&n: &usize| n > 0)
            else {
                eprintln!("--max-cells requires a positive cell count");
                std::process::exit(2);
            };
            max_cells = Some(n);
            i += 2;
        } else if positional.len() < 2 {
            positional.push(args[i].clone());
            i += 1;
        } else {
            eprintln!("unexpected argument '{}'", args[i]);
            std::process::exit(2);
        }
    }
    if list {
        print!("{}", suite::render_list());
        return;
    }
    if positional.first().map(String::as_str) == Some("sweep") {
        let Some(matrix_path) = positional.get(1) else {
            eprintln!("usage: experiments sweep <matrix.toml> [--out <dir>] [--jobs <N>] [--no-memo] [--max-cells <K>] [--bench-json]");
            std::process::exit(2);
        };
        run_sweep_command(
            matrix_path,
            jobs.unwrap_or_else(runner::default_jobs),
            sweep_out,
            no_memo,
            max_cells,
            bench_json,
        );
        return;
    }
    if sweep_out.is_some() || no_memo || max_cells.is_some() {
        eprintln!("--out/--no-memo/--max-cells only apply to the sweep subcommand");
        std::process::exit(2);
    }
    let arg = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if let Some(extra) = positional.get(1) {
        eprintln!("unexpected argument '{extra}'");
        std::process::exit(2);
    }
    let Some(selection) = suite::resolve(&arg) else {
        eprintln!(
            "unknown experiment '{arg}'; valid: fig3 fig3-mini fig4 fig5 fig6 table1 table2 table3 \
             fig-scale fig-scale-mini \
             ablation-fences ablation-weights ablation-coarse ablation-mrc-threshold \
             ablation-mrc-approx ablation-mrc-sampled all"
        );
        std::process::exit(2);
    };
    let jobs = jobs.unwrap_or_else(runner::default_jobs);
    let server: Option<Rc<MetricsServer>> =
        serve_port.map(|port| match MetricsServer::bind(port) {
            Ok(server) => {
                println!("serving /metrics on 127.0.0.1:{}", server.port());
                Rc::new(server)
            }
            Err(e) => {
                eprintln!("--serve {port}: cannot bind: {e}");
                std::process::exit(2);
            }
        });
    // The metrics directory is created up front (and only it): a bad
    // `--trace` path must keep failing with a `file: error` exit, not be
    // silently papered over by creating its parent directories.
    if let Some(dir) = &metrics_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("{dir}: cannot create metrics dir: {e}");
            std::process::exit(1);
        }
    }
    let cfg = suite::SuiteConfig {
        jobs,
        trace_path,
        metrics_dir,
        capture_exposition: server.is_some(),
        profile: profile_folded.is_some(),
    };

    // Figures execute on the worker pool; this closure is the commit
    // side, invoked in canonical order on the main thread: print the
    // buffered stdout block, write the buffered artifacts, publish the
    // live exposition, and fold the figure's profile into the merged
    // overhead report.
    let mut merged_profile = SpanProfiler::new();
    let mut instrumented_wall = Duration::ZERO;
    let mut any_profile = false;
    let mut total_elements = 0u64;
    let mut bench = bench_json.then(|| Bench::collector("experiments"));
    let suite_start = std::time::Instant::now();
    suite::run_suite(&selection, &cfg, |out| {
        print!("{}", out.stdout);
        for (path, bytes) in &out.files {
            if let Err(e) = std::fs::write(path, bytes) {
                eprintln!("{}: cannot write: {e}", path.display());
                std::process::exit(1);
            }
        }
        if let (Some(server), Some(exposition)) = (&server, out.publish) {
            server.publish(exposition);
        }
        if let Some(profile) = &out.profile {
            merged_profile.merge(profile);
            instrumented_wall += out.wall;
            any_profile = true;
        }
        total_elements += out.elements;
        if let Some(b) = &mut bench {
            let name = format!("jobs={jobs}/{}", out.name);
            if out.elements > 0 {
                // Figures that count work units (fig-scale: events
                // dispatched) get a throughput-readable record.
                b.record_wall_elements(&name, out.wall, out.elements);
            } else {
                b.record_wall(&name, out.wall);
            }
        }
    });
    let total_wall = suite_start.elapsed();
    if any_profile {
        // Real wall-clock timings: stderr only, so stdout stays
        // byte-identical across runs and job counts.
        eprint!("{}", merged_profile.report(instrumented_wall));
    }
    if let Some(path) = &profile_folded {
        let folded = merged_profile.folded_sim();
        if let Err(e) = odlb_telemetry::validate_folded(&folded) {
            eprintln!("{path}: refusing to write invalid folded dump: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(path, &folded) {
            eprintln!("{path}: cannot write: {e}");
            std::process::exit(1);
        }
        // The wall-clock flamegraph of the same stacks: stderr only,
        // since wall timings vary run to run.
        eprint!("{}", merged_profile.folded_wall());
        eprintln!("profile: wrote {path} ({} stacks)", folded.lines().count());
    }
    if let Some(b) = &mut bench {
        // Elements are the selection's total simulated events, so the
        // suite-level events/sec is derivable from this one record.
        b.record_wall_elements(&format!("jobs={jobs}/total"), total_wall, total_elements);
    }
    drop(bench); // a collector writes BENCH_experiments.json on drop

    hold_for_scrape(&server, serve_hold_ms);
}

/// `experiments sweep <matrix.toml>`: parses the matrix, runs (or
/// resumes) the sweep on the ordered worker pool, prints the
/// deterministic cell log plus completion lines, and with `--bench-json`
/// merges per-cell wall clocks and the whole-sweep events/sec into
/// `BENCH_experiments.json`. Stdout carries no wall-clock content, so a
/// given starting state prints byte-identically at any `--jobs` count.
fn run_sweep_command(
    matrix_path: &str,
    jobs: usize,
    out_dir: Option<String>,
    no_memo: bool,
    max_cells: Option<usize>,
    bench_json: bool,
) {
    let text = match std::fs::read_to_string(matrix_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{matrix_path}: cannot read: {e}");
            std::process::exit(1);
        }
    };
    let spec = match sweep::parse_matrix(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{matrix_path}: {e}");
            std::process::exit(2);
        }
    };
    let out_dir = PathBuf::from(out_dir.unwrap_or_else(|| format!("sweep-{}", spec.name)));
    let opts = sweep::SweepOptions {
        jobs,
        out_dir,
        memo: !no_memo,
        max_cells,
    };
    let start = std::time::Instant::now();
    let outcome = match sweep::run_sweep(&spec, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed();
    print!("{}", outcome.log);
    let dup = if outcome.duplicates > 0 {
        format!(", {} duplicate configs dropped", outcome.duplicates)
    } else {
        String::new()
    };
    println!(
        "sweep {}: {} cells ({} cached, {} ran{dup})",
        spec.name, outcome.total_cells, outcome.skipped, outcome.ran
    );
    if outcome.interrupted {
        println!("stopped by --max-cells before completion; re-run to resume");
    } else {
        println!(
            "merged {} and {}",
            outcome.csv_path.display(),
            outcome.summary_path.display()
        );
        // Wall-derived throughput goes to stderr, keeping stdout
        // byte-identical across runs.
        eprintln!(
            "sweep {}: {} simulated events in {:.2?}",
            spec.name, outcome.events, wall
        );
    }
    if bench_json {
        let mut b = Bench::merged("experiments");
        for (cell, cell_wall) in &outcome.cell_walls {
            b.record_wall(&format!("sweep/{}/cell/{cell}", spec.name), *cell_wall);
        }
        b.record_wall_elements(&format!("sweep/{}/total", spec.name), wall, outcome.events);
    }
}

/// Keeps the endpoint up after the run until a scraper fetches the
/// final exposition (bounded by --serve-hold), so an external check
/// never races the run's completion.
fn hold_for_scrape(server: &Option<Rc<MetricsServer>>, serve_hold_ms: u64) {
    if let Some(server) = server {
        if serve_hold_ms > 0 {
            println!(
                "holding /metrics on 127.0.0.1:{} for up to {serve_hold_ms}ms (waiting for one scrape)",
                server.port()
            );
            if server.await_scrapes(1, std::time::Duration::from_millis(serve_hold_ms)) {
                println!("scraped {} time(s); shutting down", server.scrape_count());
            } else {
                println!("no scrape within {serve_hold_ms}ms; shutting down");
            }
        }
    }
}
