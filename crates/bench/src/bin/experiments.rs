//! The experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [fig3|fig4|fig5|fig6|table1|table2|table3|
//!              ablation-fences|ablation-weights|ablation-coarse|
//!              ablation-mrc-threshold|ablation-mrc-approx|all]
//!             [--trace <path>]
//! ```
//!
//! The controller-driven figures (fig3, fig4) run with a decision tracer
//! attached and print their run digest — the 64-bit FNV-1a fold of the
//! canonical event stream — so two runs can be compared at a glance.
//! `--trace <path>` additionally writes the full event stream as JSONL
//! (when both figures run, the figure name is suffixed to the path).

use odlb_bench::experiments::*;
use odlb_trace::{DigestSink, JsonlSink, Tracer};

/// Builds a tracer for one traced figure: always a digest, plus a JSONL
/// file when `--trace` was given. Returns the tracer and the digest
/// handle to read back after the run.
fn traced(
    trace_path: Option<&str>,
    figure: &str,
    multiple: bool,
) -> (Tracer, std::rc::Rc<std::cell::RefCell<DigestSink>>) {
    let tracer = Tracer::new();
    if let Some(path) = trace_path {
        let path = if multiple {
            format!("{path}.{figure}")
        } else {
            path.to_string()
        };
        match JsonlSink::create(&path) {
            Ok(sink) => {
                tracer.attach(sink);
            }
            Err(e) => eprintln!("cannot open trace file {path}: {e}"),
        }
    }
    let digest = tracer.attach(DigestSink::new());
    (tracer, digest)
}

fn print_digest(figure: &str, digest: &std::cell::RefCell<DigestSink>) {
    let d = digest.borrow();
    println!(
        "{figure} run digest: {:#018x} ({} events)\n",
        d.digest(),
        d.events()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut arg = String::new();
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            if i + 1 >= args.len() {
                eprintln!("--trace requires a path");
                std::process::exit(2);
            }
            trace_path = Some(args[i + 1].clone());
            i += 2;
        } else if arg.is_empty() {
            arg = args[i].clone();
            i += 1;
        } else {
            eprintln!("unexpected argument '{}'", args[i]);
            std::process::exit(2);
        }
    }
    if arg.is_empty() {
        arg = "all".to_string();
    }
    let all = arg == "all";
    let mut ran = false;

    if all || arg == "fig5" {
        ran = true;
        banner("Fig. 5 — MRC of BestSeller (normal configuration); paper: acceptable 6982 pages");
        println!("{}", mrc_common::render(&fig5::run(120)));
    }
    if all || arg == "fig6" {
        ran = true;
        banner("Fig. 6 — MRC of SearchItemsByRegion; paper: acceptable 7906 pages");
        println!("{}", mrc_common::render(&fig6::run(300)));
    }
    if all || arg == "table1" {
        ran = true;
        banner("Table 1 — buffer pool management algorithms (index dropped)");
        println!("{}", table1::render(&table1::run(3_000)));
    }
    if all || arg == "fig3" {
        ran = true;
        banner("Fig. 3 — CPU saturation under sinusoid load");
        let (tracer, digest) = traced(trace_path.as_deref(), "fig3", all);
        println!(
            "{}",
            fig3::render(&fig3::run_with(tracer, 64, 14, 50, 450, 4))
        );
        print_digest("fig3", &digest);
    }
    if all || arg == "fig4" {
        ran = true;
        banner("Fig. 4 — dropping the O_DATE index");
        let (tracer, digest) = traced(trace_path.as_deref(), "fig4", all);
        println!("{}", fig4::render(&fig4::run_with(tracer, 50, 12, 15)));
        print_digest("fig4", &digest);
    }
    if all || arg == "table2" {
        ran = true;
        banner("Table 2 — memory contention in a shared buffer pool");
        println!("{}", table2::render(&table2::run(45, 80, 10, 6, 15)));
    }
    if all || arg == "table3" {
        ran = true;
        banner("Table 3 — I/O contention among VM domains");
        println!("{}", table3::render(&table3::run(40, 8, 8, 10)));
    }
    if all || arg == "ablation-fences" {
        ran = true;
        banner("Ablation A1 — fence multiplier sensitivity");
        let snap = ablations::capture_detection_snapshot(50);
        println!(
            "{:>8} {:>10} {:>18}",
            "inner", "contexts", "flags BestSeller"
        );
        for row in ablations::fence_ablation(&snap, &[0.5, 1.0, 1.5, 2.0, 3.0, 6.0]) {
            println!(
                "{:>8.1} {:>10} {:>18}",
                row.inner, row.contexts, row.flags_bestseller
            );
        }
        println!();
    }
    if all || arg == "ablation-weights" {
        ran = true;
        banner("Ablation A2 — impact weighting");
        let snap = ablations::capture_detection_snapshot(50);
        println!(
            "{:>22} {:>10} {:>18} {:>14}",
            "weighting", "contexts", "flags BestSeller", "separation"
        );
        for row in ablations::weight_ablation(&snap) {
            println!(
                "{:>22} {:>10} {:>18} {:>14.1}",
                row.weighting, row.contexts, row.flags_bestseller, row.bestseller_separation
            );
        }
        println!();
    }
    if all || arg == "ablation-coarse" {
        ran = true;
        banner("Ablation A3 — fine-grained vs coarse-grained vs CPU-only");
        println!(
            "{:>22} {:>18} {:>14}",
            "controller", "final latency (s)", "servers used"
        );
        for row in ablations::controller_ablation(50, 30, 25) {
            println!(
                "{:>22} {:>18.2} {:>14}",
                row.controller, row.final_latency_s, row.servers_used
            );
        }
        println!();
    }
    if all || arg == "ablation-mrc-threshold" {
        ran = true;
        banner("Ablation A4 — MRC acceptability threshold vs BestSeller quota");
        println!("{:>12} {:>20}", "threshold", "acceptable (pages)");
        for (t, pages) in
            ablations::mrc_threshold_ablation(80, &[0.01, 0.02, 0.05, 0.10, 0.15, 0.20])
        {
            println!("{t:>12.2} {pages:>20}");
        }
        println!();
    }
    if all || arg == "ablation-mrc-approx" {
        ran = true;
        banner("Ablation A5 — exact Mattson vs bucketed approximation");
        println!("{:>8} {:>9} {:>16}", "ratio", "buckets", "max |Δmr|");
        for row in ablations::tracker_ablation(150, &[1.1, 1.2, 1.5, 2.0, 4.0]) {
            println!(
                "{:>8.1} {:>9} {:>16.4}",
                row.ratio, row.buckets, row.max_deviation
            );
        }
        println!();
    }

    if !ran {
        eprintln!(
            "unknown experiment '{arg}'; valid: fig3 fig4 fig5 fig6 table1 table2 table3 \
             ablation-fences ablation-weights ablation-coarse ablation-mrc-threshold \
             ablation-mrc-approx all"
        );
        std::process::exit(2);
    }
}

fn banner(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}
