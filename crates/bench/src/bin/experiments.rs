//! The experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [fig3|fig3-mini|fig4|fig5|fig6|table1|table2|table3|
//!              ablation-fences|ablation-weights|ablation-coarse|
//!              ablation-mrc-threshold|ablation-mrc-approx|all]
//!             [--trace <path>] [--metrics <dir>]
//! ```
//!
//! The controller-driven figures (fig3, fig4) run with a decision tracer
//! attached and print their run digest — the 64-bit FNV-1a fold of the
//! canonical event stream — so two runs can be compared at a glance.
//! `--trace <path>` additionally writes the full event stream as JSONL
//! (when both figures run, the figure name is suffixed to the path).
//!
//! `--metrics <dir>` attaches the runtime telemetry registry to the
//! controller-driven figures and writes one Prometheus text snapshot
//! (`<figure>.prom`) and one CSV time series (`<figure>.csv`) per
//! figure, then prints the controller-overhead report. Metric values
//! derive only from simulation state, so two same-seed runs write
//! byte-identical artifacts. `fig3-mini` is a miniature fig3 used by the
//! CI smoke test.
//!
//! `--serve <port>` additionally serves the live exposition at
//! `GET http://127.0.0.1:<port>/metrics` while the run progresses
//! (port 0 = ephemeral; the bound port is printed on startup). The
//! endpoint reads a published copy of the exposition, never simulation
//! state, so serving leaves artifacts and digests byte-identical.
//! `--serve-hold <ms>` keeps the process alive after the run until one
//! scrape lands (or the timeout passes) — the CI smoke test uses it to
//! fetch without racing the run.

use odlb_bench::experiments::*;
use odlb_telemetry::{MetricsServer, SharedSpanProfiler, SpanProfiler, Telemetry};
use odlb_trace::{DigestSink, JsonlSink, Tracer};
use std::rc::Rc;

/// Builds a tracer for one traced figure: always a digest, plus a JSONL
/// file when `--trace` was given. Returns the tracer and the digest
/// handle to read back after the run.
fn traced(
    trace_path: Option<&str>,
    figure: &str,
    multiple: bool,
) -> (Tracer, std::rc::Rc<std::cell::RefCell<DigestSink>>) {
    let tracer = Tracer::new();
    if let Some(path) = trace_path {
        let path = if multiple {
            format!("{path}.{figure}")
        } else {
            path.to_string()
        };
        match JsonlSink::create(&path) {
            Ok(sink) => {
                tracer.attach(sink);
            }
            Err(e) => {
                eprintln!("{path}: cannot open trace file: {e}");
                std::process::exit(1);
            }
        }
    }
    let digest = tracer.attach(DigestSink::new());
    (tracer, digest)
}

fn print_digest(figure: &str, digest: &std::cell::RefCell<DigestSink>) {
    let d = digest.borrow();
    println!(
        "{figure} run digest: {:#018x} ({} events)\n",
        d.digest(),
        d.events()
    );
}

/// Builds the telemetry handle and profiler for one figure: attached
/// when `--metrics` or `--serve` was given, inactive (and therefore
/// free) otherwise. With a server, every interval snapshot also
/// publishes the exposition to the live endpoint.
fn instrumented(
    metrics_dir: Option<&str>,
    server: Option<&Rc<MetricsServer>>,
) -> (Telemetry, Option<SharedSpanProfiler>) {
    if metrics_dir.is_some() || server.is_some() {
        let mut telemetry = Telemetry::attached();
        if let Some(server) = server {
            telemetry = telemetry.with_server(Rc::clone(server));
        }
        (telemetry, Some(SpanProfiler::shared()))
    } else {
        (Telemetry::inactive(), None)
    }
}

/// Writes `<dir>/<figure>.prom` and `<dir>/<figure>.csv` and prints the
/// controller-overhead report. No-op without `--metrics`.
fn finish_metrics(
    dir: Option<&str>,
    figure: &str,
    telemetry: &Telemetry,
    profiler: &Option<SharedSpanProfiler>,
    wall: std::time::Duration,
) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("{dir}: cannot create metrics dir: {e}");
        std::process::exit(1);
    }
    let prom_path = std::path::Path::new(dir).join(format!("{figure}.prom"));
    let csv_path = std::path::Path::new(dir).join(format!("{figure}.csv"));
    let prom = telemetry.render_prometheus().unwrap_or_default();
    let csv = telemetry.render_csv().unwrap_or_default();
    for (path, content) in [(&prom_path, &prom), (&csv_path, &csv)] {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("{}: cannot write: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "metrics: wrote {} and {}",
        prom_path.display(),
        csv_path.display()
    );
    if let Some(p) = profiler {
        println!("{}", p.borrow().report(wall));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut arg = String::new();
    let mut trace_path: Option<String> = None;
    let mut metrics_dir: Option<String> = None;
    let mut serve_port: Option<u16> = None;
    let mut serve_hold_ms: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            if i + 1 >= args.len() {
                eprintln!("--trace requires a path");
                std::process::exit(2);
            }
            trace_path = Some(args[i + 1].clone());
            i += 2;
        } else if args[i] == "--metrics" {
            if i + 1 >= args.len() {
                eprintln!("--metrics requires a directory");
                std::process::exit(2);
            }
            metrics_dir = Some(args[i + 1].clone());
            i += 2;
        } else if args[i] == "--serve" {
            let Some(port) = args.get(i + 1).and_then(|p| p.parse().ok()) else {
                eprintln!("--serve requires a port (0 = ephemeral)");
                std::process::exit(2);
            };
            serve_port = Some(port);
            i += 2;
        } else if args[i] == "--serve-hold" {
            let Some(ms) = args.get(i + 1).and_then(|p| p.parse().ok()) else {
                eprintln!("--serve-hold requires a duration in milliseconds");
                std::process::exit(2);
            };
            serve_hold_ms = ms;
            i += 2;
        } else if arg.is_empty() {
            arg = args[i].clone();
            i += 1;
        } else {
            eprintln!("unexpected argument '{}'", args[i]);
            std::process::exit(2);
        }
    }
    if arg.is_empty() {
        arg = "all".to_string();
    }
    let server: Option<Rc<MetricsServer>> =
        serve_port.map(|port| match MetricsServer::bind(port) {
            Ok(server) => {
                println!("serving /metrics on 127.0.0.1:{}", server.port());
                Rc::new(server)
            }
            Err(e) => {
                eprintln!("--serve {port}: cannot bind: {e}");
                std::process::exit(2);
            }
        });
    let all = arg == "all";
    let mut ran = false;

    if all || arg == "fig5" {
        ran = true;
        banner("Fig. 5 — MRC of BestSeller (normal configuration); paper: acceptable 6982 pages");
        println!("{}", mrc_common::render(&fig5::run(120)));
    }
    if all || arg == "fig6" {
        ran = true;
        banner("Fig. 6 — MRC of SearchItemsByRegion; paper: acceptable 7906 pages");
        println!("{}", mrc_common::render(&fig6::run(300)));
    }
    if all || arg == "table1" {
        ran = true;
        banner("Table 1 — buffer pool management algorithms (index dropped)");
        println!("{}", table1::render(&table1::run(3_000)));
    }
    if all || arg == "fig3" || arg == "fig3-mini" {
        ran = true;
        let mini = arg == "fig3-mini";
        let name = if mini { "fig3-mini" } else { "fig3" };
        banner(if mini {
            "Fig. 3 (miniature smoke run) — CPU saturation under sinusoid load"
        } else {
            "Fig. 3 — CPU saturation under sinusoid load"
        });
        let (tracer, digest) = traced(trace_path.as_deref(), name, all);
        let (telemetry, profiler) = instrumented(metrics_dir.as_deref(), server.as_ref());
        let start = std::time::Instant::now();
        let r = if mini {
            fig3::run_instrumented(
                tracer,
                telemetry.clone(),
                profiler.clone(),
                30,
                10,
                30,
                480,
                3,
            )
        } else {
            fig3::run_instrumented(
                tracer,
                telemetry.clone(),
                profiler.clone(),
                64,
                14,
                50,
                450,
                4,
            )
        };
        let wall = start.elapsed();
        println!("{}", fig3::render(&r));
        print_digest(name, &digest);
        finish_metrics(metrics_dir.as_deref(), name, &telemetry, &profiler, wall);
    }
    if all || arg == "fig4" {
        ran = true;
        banner("Fig. 4 — dropping the O_DATE index");
        let (tracer, digest) = traced(trace_path.as_deref(), "fig4", all);
        let (telemetry, profiler) = instrumented(metrics_dir.as_deref(), server.as_ref());
        let start = std::time::Instant::now();
        let r = fig4::run_instrumented(tracer, telemetry.clone(), profiler.clone(), 50, 12, 15);
        let wall = start.elapsed();
        println!("{}", fig4::render(&r));
        print_digest("fig4", &digest);
        finish_metrics(metrics_dir.as_deref(), "fig4", &telemetry, &profiler, wall);
    }
    if all || arg == "table2" {
        ran = true;
        banner("Table 2 — memory contention in a shared buffer pool");
        println!("{}", table2::render(&table2::run(45, 80, 10, 6, 15)));
    }
    if all || arg == "table3" {
        ran = true;
        banner("Table 3 — I/O contention among VM domains");
        println!("{}", table3::render(&table3::run(40, 8, 8, 10)));
    }
    if all || arg == "ablation-fences" {
        ran = true;
        banner("Ablation A1 — fence multiplier sensitivity");
        let snap = ablations::capture_detection_snapshot(50);
        println!(
            "{:>8} {:>10} {:>18}",
            "inner", "contexts", "flags BestSeller"
        );
        for row in ablations::fence_ablation(&snap, &[0.5, 1.0, 1.5, 2.0, 3.0, 6.0]) {
            println!(
                "{:>8.1} {:>10} {:>18}",
                row.inner, row.contexts, row.flags_bestseller
            );
        }
        println!();
    }
    if all || arg == "ablation-weights" {
        ran = true;
        banner("Ablation A2 — impact weighting");
        let snap = ablations::capture_detection_snapshot(50);
        println!(
            "{:>22} {:>10} {:>18} {:>14}",
            "weighting", "contexts", "flags BestSeller", "separation"
        );
        for row in ablations::weight_ablation(&snap) {
            println!(
                "{:>22} {:>10} {:>18} {:>14.1}",
                row.weighting, row.contexts, row.flags_bestseller, row.bestseller_separation
            );
        }
        println!();
    }
    if all || arg == "ablation-coarse" {
        ran = true;
        banner("Ablation A3 — fine-grained vs coarse-grained vs CPU-only");
        println!(
            "{:>22} {:>18} {:>14}",
            "controller", "final latency (s)", "servers used"
        );
        for row in ablations::controller_ablation(50, 30, 25) {
            println!(
                "{:>22} {:>18.2} {:>14}",
                row.controller, row.final_latency_s, row.servers_used
            );
        }
        println!();
    }
    if all || arg == "ablation-mrc-threshold" {
        ran = true;
        banner("Ablation A4 — MRC acceptability threshold vs BestSeller quota");
        println!("{:>12} {:>20}", "threshold", "acceptable (pages)");
        for (t, pages) in
            ablations::mrc_threshold_ablation(80, &[0.01, 0.02, 0.05, 0.10, 0.15, 0.20])
        {
            println!("{t:>12.2} {pages:>20}");
        }
        println!();
    }
    if all || arg == "ablation-mrc-approx" {
        ran = true;
        banner("Ablation A5 — exact Mattson vs bucketed approximation");
        println!("{:>8} {:>9} {:>16}", "ratio", "buckets", "max |Δmr|");
        for row in ablations::tracker_ablation(150, &[1.1, 1.2, 1.5, 2.0, 4.0]) {
            println!(
                "{:>8.1} {:>9} {:>16.4}",
                row.ratio, row.buckets, row.max_deviation
            );
        }
        println!();
    }

    if !ran {
        eprintln!(
            "unknown experiment '{arg}'; valid: fig3 fig3-mini fig4 fig5 fig6 table1 table2 table3 \
             ablation-fences ablation-weights ablation-coarse ablation-mrc-threshold \
             ablation-mrc-approx all"
        );
        std::process::exit(2);
    }

    // Keep the endpoint up after the run until a scraper fetches the
    // final exposition (bounded by --serve-hold), so an external check
    // never races the run's completion.
    if let Some(server) = &server {
        if serve_hold_ms > 0 {
            println!(
                "holding /metrics on 127.0.0.1:{} for up to {serve_hold_ms}ms (waiting for one scrape)",
                server.port()
            );
            if server.await_scrapes(1, std::time::Duration::from_millis(serve_hold_ms)) {
                println!("scraped {} time(s); shutting down", server.scrape_count());
            } else {
                println!("no scrape within {serve_hold_ms}ms; shutting down");
            }
        }
    }
}

fn banner(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}
