//! Validates telemetry artifacts written by `experiments --metrics`,
//! or a live exposition served by `experiments --serve`.
//!
//! ```text
//! promcheck <file.prom|file.csv|file.folded|http://host:port/metrics> [more ...]
//! ```
//!
//! `.prom` files are checked against the Prometheus text exposition
//! rules (every sample preceded by `# HELP`/`# TYPE`, parseable finite
//! values, integral non-negative counters, strictly increasing `le`
//! bucket bounds with non-decreasing cumulative counts, `+Inf` equal to
//! `_count`). `.csv` files are checked for the long-format header, field
//! count, non-decreasing timestamps and per-series monotone counters.
//! `.folded` files (written by `experiments --profile-folded`) are
//! checked against the folded-stacks rules: `frames <count>` lines,
//! non-empty `;`-joined frames, strictly sorted by frame vector.
//! `http://` arguments are fetched over a plain socket (no external
//! HTTP client) and validated as expositions; an empty exposition is
//! rejected, so the CI scrape smoke test fails if it fetches before the
//! run published anything. Exits non-zero on the first invalid input.

use odlb_telemetry::{validate_csv, validate_folded, validate_prometheus};
use std::io::{Read, Write};

/// Fetches `http://host:port/path` with a raw one-shot GET. Returns the
/// response body, or a description of what went wrong.
fn fetch_url(url: &str) -> Result<String, String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| "only http:// URLs are supported".to_string())?;
    let (host, path) = match rest.split_once('/') {
        Some((host, path)) => (host, format!("/{path}")),
        None => (rest, "/metrics".to_string()),
    };
    let mut stream =
        std::net::TcpStream::connect(host).map_err(|e| format!("cannot connect to {host}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("cannot send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response".to_string())?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("unexpected status line: {status}"));
    }
    Ok(body.to_string())
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!(
            "usage: promcheck <file.prom|file.csv|file.folded|http://host:port/metrics> [more ...]"
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for file in &files {
        let is_url = file.starts_with("http://");
        let content = if is_url {
            match fetch_url(file) {
                Ok(body) => body,
                Err(e) => {
                    eprintln!("{file}: {e}");
                    failed = true;
                    continue;
                }
            }
        } else {
            match std::fs::read_to_string(file) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{file}: cannot read: {e}");
                    failed = true;
                    continue;
                }
            }
        };
        if file.ends_with(".csv") {
            match validate_csv(&content) {
                Ok(rows) => println!("{file}: ok ({rows} rows)"),
                Err(e) => {
                    eprintln!("{file}: INVALID: {e}");
                    failed = true;
                }
            }
        } else if file.ends_with(".folded") {
            match validate_folded(&content) {
                Ok(stats) => println!(
                    "{file}: ok ({} stacks, max depth {})",
                    stats.lines, stats.max_depth
                ),
                Err(e) => {
                    eprintln!("{file}: INVALID: {e}");
                    failed = true;
                }
            }
        } else {
            match validate_prometheus(&content) {
                Ok(stats) if is_url && stats.families == 0 => {
                    eprintln!("{file}: INVALID: live exposition is empty");
                    failed = true;
                }
                Ok(stats) => println!(
                    "{file}: ok ({} families, {} samples, {} histograms)",
                    stats.families, stats.samples, stats.histograms
                ),
                Err(e) => {
                    eprintln!("{file}: INVALID: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
