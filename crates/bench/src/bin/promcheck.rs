//! Validates telemetry artifacts written by `experiments --metrics`.
//!
//! ```text
//! promcheck <file.prom|file.csv> [more files ...]
//! ```
//!
//! `.prom` files are checked against the Prometheus text exposition
//! rules (every sample preceded by `# HELP`/`# TYPE`, parseable finite
//! values, integral non-negative counters, strictly increasing `le`
//! bucket bounds with non-decreasing cumulative counts, `+Inf` equal to
//! `_count`). `.csv` files are checked for the long-format header, field
//! count, non-decreasing timestamps and per-series monotone counters.
//! Exits non-zero on the first invalid file, so CI can gate on it.

use odlb_telemetry::{validate_csv, validate_prometheus};

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: promcheck <file.prom|file.csv> [more files ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for file in &files {
        let content = match std::fs::read_to_string(file) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        if file.ends_with(".csv") {
            match validate_csv(&content) {
                Ok(rows) => println!("{file}: ok ({rows} rows)"),
                Err(e) => {
                    eprintln!("{file}: INVALID: {e}");
                    failed = true;
                }
            }
        } else {
            match validate_prometheus(&content) {
                Ok(stats) => println!(
                    "{file}: ok ({} families, {} samples, {} histograms)",
                    stats.families, stats.samples, stats.histograms
                ),
                Err(e) => {
                    eprintln!("{file}: INVALID: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
