//! `experiments sweep` — the resumable parameter-matrix jobserver.
//!
//! A sweep turns a declarative matrix (seeds × replica counts × workload
//! mixes × MRC modes × controller variants, parsed from a small TOML
//! subset by [`parse_matrix`]) into cells that run on the ordered-commit
//! worker pool ([`crate::runner::run_ordered`]): cells *execute* in any
//! order on any worker but *commit* in canonical matrix order, so every
//! artifact is byte-identical at any `--jobs` count. Three layers make it
//! a jobserver rather than a for-loop:
//!
//! 1. **Content-addressed cells** — each cell's directory under
//!    `<out>/cells/` is named by the FNV-1a hash of its canonicalized
//!    config ([`CellConfig::canonical`]); a completed cell writes a
//!    `CELL_OK` manifest (canonical config, hash, run digest, row count,
//!    summary line). A restarted sweep validates manifests and skips every
//!    completed cell: interrupted studies resume in O(remaining).
//! 2. **Shared-trace memoization** — cells agreeing on the workload key
//!    ([`CellConfig::trace_key`]: seed, workload mix, cluster size,
//!    clients, horizon) but differing only in controller/MRC variant
//!    replay one pregenerated open-loop schedule
//!    ([`odlb_workload::generate_schedule`]) behind an `Arc`. Generation
//!    is a large fraction of short-cell wall time; with memoization it is
//!    paid once per key instead of once per cell. `--no-memo` regenerates
//!    per cell — byte-parity between the two paths is pinned by tests.
//! 3. **Deterministic merge** — `sweep.csv` (long format, one row per
//!    cell-interval) and `summary.txt` (one line per cell) are assembled
//!    from the on-disk cell artifacts in canonical order, so a resumed
//!    sweep reproduces an uninterrupted one byte for byte.
//!
//! Simulated results never mix with wall-clock content: cell CSV rows and
//! manifests carry simulation-derived values only, while per-cell wall
//! clocks and the whole-sweep events/sec ride out of band in
//! [`SweepOutcome`] for the bench ledger (`BENCH_experiments.json`).

use crate::runner::{run_ordered, Job};
use odlb_cluster::{Simulation, SimulationConfig};
use odlb_core::{
    ClusterController, CoarseGrainedController, ControllerConfig, CpuOnlyController,
    SelectiveRetuningController, VmMigrationController,
};
use odlb_engine::EngineConfig;
use odlb_metrics::{AppId, Sla};
use odlb_mrc::MrcMode;
use odlb_sim::SimDuration;
use odlb_storage::{DomainId, SpaceId};
use odlb_trace::{fnv1a64, DigestSink, Tracer};
use odlb_workload::rubis::{rubis_workload, RubisConfig};
use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};
use odlb_workload::{
    generate_schedule, AccessPattern, ClientConfig, GeneratedSchedule, LoadFunction,
    QueryClassSpec, ScheduleConfig, WorkloadSpec,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload mixes a matrix may reference.
pub const WORKLOADS: [&str; 3] = ["tpcw", "rubis", "zipf"];

/// Controller variants a matrix may reference.
pub const CONTROLLERS: [&str; 4] = ["selective", "cpu-only", "coarse", "vm-migration"];

/// The measurement interval every cell runs on (the driver default).
const INTERVAL: SimDuration = SimDuration::from_secs(10);
/// The load-update tick every cell (and schedule) runs on.
const TICK: SimDuration = SimDuration::from_secs(2);

/// Header of the merged long-format `sweep.csv`.
pub const CSV_HEADER: &str =
    "cell,seed,replicas,workload,mrc,controller,interval,latency_ms,throughput_qps,\
     sla_ok,actions,machines\n";

/// One parsed sweep matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixSpec {
    /// Sweep name (labels bench records and the summary).
    pub name: String,
    /// Measurement intervals per cell.
    pub intervals: usize,
    /// Leading intervals during which the controller stays passive.
    pub warmup: usize,
    /// Offered load (constant client count).
    pub clients: usize,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Replica-count axis (one instance per server).
    pub replicas: Vec<usize>,
    /// Workload-mix axis (members of [`WORKLOADS`]).
    pub workloads: Vec<String>,
    /// MRC-mode axis.
    pub mrc: Vec<CellMrc>,
    /// Controller axis (members of [`CONTROLLERS`]).
    pub controllers: Vec<String>,
}

/// An MRC tracker selection, canonicalised for hashing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellMrc {
    /// Exact Mattson.
    Exact,
    /// Geometric buckets.
    Bucketed,
    /// SHARDS-style sampling at the given rate.
    Sampled(f64),
}

impl CellMrc {
    /// Parses `exact`, `bucketed`, or `sampled:<rate>`.
    pub fn parse(s: &str) -> Result<CellMrc, String> {
        match s {
            "exact" => Ok(CellMrc::Exact),
            "bucketed" => Ok(CellMrc::Bucketed),
            _ => {
                let rate = s
                    .strip_prefix("sampled:")
                    .and_then(|r| r.parse::<f64>().ok())
                    .ok_or_else(|| format!("bad mrc '{s}' (exact | bucketed | sampled:<rate>)"))?;
                if !(rate > 0.0 && rate <= 1.0) {
                    return Err(format!("sampled rate {rate} outside (0, 1]"));
                }
                Ok(CellMrc::Sampled(rate))
            }
        }
    }

    /// The canonical spelling (stable under re-parsing; rates rendered
    /// at fixed precision so hashing never sees float-formatting drift).
    pub fn canonical(&self) -> String {
        match self {
            CellMrc::Exact => "exact".to_string(),
            CellMrc::Bucketed => "bucketed".to_string(),
            CellMrc::Sampled(rate) => format!("sampled:{rate:.4}"),
        }
    }

    /// The tracker mode handed to the controller.
    pub fn mode(&self) -> MrcMode {
        match self {
            CellMrc::Exact => MrcMode::Exact,
            CellMrc::Bucketed => MrcMode::Bucketed,
            CellMrc::Sampled(rate) => MrcMode::Sampled { rate: *rate },
        }
    }
}

/// One fully resolved cell of the matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CellConfig {
    /// Root seed (drives the schedule and the simulation).
    pub seed: u64,
    /// Servers, each hosting one replica instance.
    pub replicas: usize,
    /// Workload mix name.
    pub workload: String,
    /// MRC tracker selection.
    pub mrc: CellMrc,
    /// Controller variant name.
    pub controller: String,
    /// Measurement intervals.
    pub intervals: usize,
    /// Passive warm-up intervals.
    pub warmup: usize,
    /// Offered load (clients).
    pub clients: usize,
}

impl CellConfig {
    /// The canonical config string: `key=value` pairs, keys sorted, one
    /// spelling per value. Equal configs hash equal; different configs
    /// differ textually.
    pub fn canonical(&self) -> String {
        format!(
            "clients={};controller={};intervals={};mrc={};replicas={};seed={};warmup={};workload={}",
            self.clients,
            self.controller,
            self.intervals,
            self.mrc.canonical(),
            self.replicas,
            self.seed,
            self.warmup,
            self.workload,
        )
    }

    /// FNV-1a of the canonical config — the cell's content address.
    /// (Named distinctly from `Hash::hash` so lint call-graph method
    /// resolution, which unions all methods sharing a name, does not
    /// conflate it with hasher plumbing elsewhere in the workspace.)
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// The cell directory name under `<out>/cells/`.
    pub fn dir_name(&self) -> String {
        format!("{:016x}", self.content_hash())
    }

    /// The workload key: the subset of the config the generated schedule
    /// depends on. Cells sharing it differ only in controller/MRC
    /// variant and replay one memoized schedule.
    pub fn trace_key(&self) -> String {
        format!(
            "clients={};intervals={};replicas={};seed={};workload={}",
            self.clients, self.intervals, self.replicas, self.seed, self.workload,
        )
    }
}

/// Strips a `#` comment (quote-aware) and trims.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line[..i].trim(),
            _ => {}
        }
    }
    line.trim()
}

/// Parses one TOML value from the subset the matrix format uses:
/// integers, `"strings"`, and flat arrays of either.
fn parse_values(key: &str, raw: &str) -> Result<Vec<String>, String> {
    let items: Vec<&str> = if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("{key}: unterminated array"))?;
        inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect()
    } else {
        vec![raw]
    };
    items
        .into_iter()
        .map(|item| {
            if let Some(s) = item.strip_prefix('"') {
                s.strip_suffix('"')
                    .map(str::to_string)
                    .ok_or_else(|| format!("{key}: unterminated string {item}"))
            } else if item.chars().all(|c| c.is_ascii_digit()) && !item.is_empty() {
                Ok(item.to_string())
            } else {
                Err(format!("{key}: unsupported value '{item}'"))
            }
        })
        .collect()
}

/// Parses a sweep matrix from the TOML subset: top-level `key = value`
/// lines, `#` comments, integer/string scalars and flat arrays. Unknown
/// keys and section headers are errors — a typoed axis must not silently
/// produce the default matrix.
pub fn parse_matrix(text: &str) -> Result<MatrixSpec, String> {
    let mut spec = MatrixSpec {
        name: "sweep".to_string(),
        intervals: 6,
        warmup: 2,
        clients: 24,
        seeds: vec![42],
        replicas: vec![1],
        workloads: vec!["tpcw".to_string()],
        mrc: vec![CellMrc::Exact],
        controllers: vec!["selective".to_string()],
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {}: sections are not part of the matrix format; use top-level keys",
                lineno + 1
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let vals = parse_values(key, value).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let single = || -> Result<&String, String> {
            if vals.len() == 1 {
                Ok(&vals[0])
            } else {
                Err(format!("line {}: {key} takes one value", lineno + 1))
            }
        };
        let usize_of = |v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("line {}: {key}: bad integer '{v}'", lineno + 1))
        };
        match key {
            "name" => spec.name = single()?.clone(),
            "intervals" => spec.intervals = usize_of(single()?)?,
            "warmup" => spec.warmup = usize_of(single()?)?,
            "clients" => spec.clients = usize_of(single()?)?,
            "seeds" => {
                spec.seeds = vals
                    .iter()
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|_| format!("line {}: seeds: bad integer '{v}'", lineno + 1))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "replicas" => {
                spec.replicas = vals.iter().map(|v| usize_of(v)).collect::<Result<_, _>>()?;
            }
            "workloads" => spec.workloads = vals,
            "mrc" => {
                spec.mrc = vals
                    .iter()
                    .map(|v| CellMrc::parse(v))
                    .collect::<Result<_, _>>()?;
            }
            "controllers" => spec.controllers = vals,
            other => return Err(format!("line {}: unknown key '{other}'", lineno + 1)),
        }
    }
    validate(&spec)?;
    Ok(spec)
}

fn validate(spec: &MatrixSpec) -> Result<(), String> {
    if spec.intervals == 0 {
        return Err("intervals must be at least 1".to_string());
    }
    if spec.warmup >= spec.intervals {
        return Err(format!(
            "warmup {} must be below intervals {}",
            spec.warmup, spec.intervals
        ));
    }
    if spec.clients == 0 {
        return Err("clients must be at least 1".to_string());
    }
    for (axis, values) in [
        ("seeds", spec.seeds.len()),
        ("replicas", spec.replicas.len()),
        ("workloads", spec.workloads.len()),
        ("mrc", spec.mrc.len()),
        ("controllers", spec.controllers.len()),
    ] {
        if values == 0 {
            return Err(format!("axis '{axis}' is empty"));
        }
    }
    if spec.replicas.contains(&0) {
        return Err("replicas values must be at least 1".to_string());
    }
    for w in &spec.workloads {
        if !WORKLOADS.contains(&w.as_str()) {
            return Err(format!("unknown workload '{w}' (valid: {WORKLOADS:?})"));
        }
    }
    for c in &spec.controllers {
        if !CONTROLLERS.contains(&c.as_str()) {
            return Err(format!("unknown controller '{c}' (valid: {CONTROLLERS:?})"));
        }
    }
    Ok(())
}

/// Expands the matrix into cells in canonical order (seeds outermost,
/// controllers innermost) and drops exact-duplicate configs (repeated
/// axis values), reporting how many were dropped.
pub fn expand(spec: &MatrixSpec) -> (Vec<CellConfig>, usize) {
    let mut cells = Vec::new();
    let mut seen = BTreeMap::new();
    let mut duplicates = 0;
    for &seed in &spec.seeds {
        for &replicas in &spec.replicas {
            for workload in &spec.workloads {
                for &mrc in &spec.mrc {
                    for controller in &spec.controllers {
                        let cell = CellConfig {
                            seed,
                            replicas,
                            workload: workload.clone(),
                            mrc,
                            controller: controller.clone(),
                            intervals: spec.intervals,
                            warmup: spec.warmup,
                            clients: spec.clients,
                        };
                        if seen.insert(cell.canonical(), ()).is_some() {
                            duplicates += 1;
                        } else {
                            cells.push(cell);
                        }
                    }
                }
            }
        }
    }
    (cells, duplicates)
}

/// A generation-heavy synthetic mix: each query models a nested-loop
/// index join whose probes each target their own Zipf popularity
/// distribution, so every generated page pays a sampler *construction*
/// (rejection-inversion setup, ~10 transcendentals) on top of the draw,
/// while execution replays hot hits against a small resident table. This
/// is the regime where shared-trace memoization pays most — the speedup
/// gate in `benches/sweep.rs` runs a controller-variant matrix on it.
fn zipf_heavy_workload() -> WorkloadSpec {
    let space = SpaceId(0);
    let us = SimDuration::from_micros;
    WorkloadSpec {
        name: "zipf-heavy".to_string(),
        app: AppId(0),
        classes: vec![
            QueryClassSpec {
                name: "ZipfJoinRead",
                sql: "SELECT … FROM f JOIN d1 … JOIN d48 WHERE f.k = ?",
                weight: 0.97,
                pattern: AccessPattern::Composite(
                    (0..128)
                        .map(|_| AccessPattern::ZipfLookup {
                            space,
                            table_pages: 512,
                            exponent: 1.9,
                            count: 1,
                        })
                        .collect(),
                ),
                cpu_base: us(40),
                cpu_per_page: us(1),
                is_write: false,
            },
            QueryClassSpec {
                name: "ZipfWrite",
                sql: "UPDATE kv SET v = ? WHERE k = ?",
                weight: 0.03,
                pattern: AccessPattern::Composite(
                    (0..16)
                        .map(|_| AccessPattern::ZipfLookup {
                            space,
                            table_pages: 512,
                            exponent: 1.9,
                            count: 1,
                        })
                        .collect(),
                ),
                cpu_base: us(60),
                cpu_per_page: us(1),
                is_write: true,
            },
        ],
    }
}

/// Materialises a workload mix by name (names validated at parse time).
fn cell_workload(name: &str) -> WorkloadSpec {
    match name {
        "tpcw" => tpcw_workload(TpcwConfig::default()),
        "rubis" => rubis_workload(RubisConfig::default()),
        "zipf" => zipf_heavy_workload(),
        other => panic!("unvalidated workload '{other}'"),
    }
}

/// The schedule configuration of a cell — a pure function of its
/// [`CellConfig::trace_key`] fields, so memoized schedules are safe to
/// share across controller/MRC variants.
fn schedule_config(cell: &CellConfig) -> ScheduleConfig {
    ScheduleConfig {
        seed: cell.seed,
        horizon: SimDuration::from_micros(INTERVAL.as_micros() * cell.intervals as u64),
        load: LoadFunction::Constant(cell.clients),
        client: ClientConfig::default(),
        tick: TICK,
    }
}

fn cell_controller(cell: &CellConfig) -> Box<dyn ClusterController> {
    match cell.controller.as_str() {
        "selective" => Box::new(SelectiveRetuningController::new(ControllerConfig {
            mrc_mode: cell.mrc.mode(),
            ..Default::default()
        })),
        "cpu-only" => Box::new(CpuOnlyController::new(0.85, 3)),
        "coarse" => Box::new(CoarseGrainedController::new(3)),
        "vm-migration" => Box::new(VmMigrationController::new(SimDuration::from_millis(500), 3)),
        other => panic!("unvalidated controller '{other}'"),
    }
}

/// Everything one executed cell produces. CSV rows and the summary line
/// derive from simulation state only; the wall clock rides separately.
struct CellResult {
    rows: String,
    row_count: usize,
    digest: u64,
    events: u64,
    summary: String,
    wall: Duration,
}

/// Runs one cell against a (shared or freshly generated) schedule.
fn run_cell(cell: &CellConfig, schedule: Arc<GeneratedSchedule>) -> CellResult {
    let mut sim = Simulation::new(SimulationConfig {
        seed: cell.seed,
        ..Default::default()
    });
    let mut instances = Vec::with_capacity(cell.replicas);
    for _ in 0..cell.replicas {
        let server = sim.add_server(4);
        instances.push(sim.add_instance(server, DomainId(1), EngineConfig::default()));
    }
    let app = sim.add_replayed_app(cell_workload(&cell.workload), Sla::one_second(), schedule);
    for inst in instances {
        sim.assign_replica(app, inst);
    }
    let tracer = Tracer::new();
    let digest = tracer.attach(DigestSink::new());
    sim.set_tracer(tracer.clone());
    let mut controller = cell_controller(cell);
    controller.set_tracer(tracer.clone());
    sim.start();

    let id = cell.dir_name();
    let mut rows = String::new();
    let mut actions_total = 0usize;
    let mut sla_met = 0usize;
    let mut lat_weight = 0.0f64;
    let mut tput_sum = 0.0f64;
    let start = Instant::now();
    for interval in 0..cell.intervals {
        let outcome = sim.run_interval();
        let actions = if interval >= cell.warmup {
            controller.on_interval(&mut sim, &outcome).len()
        } else {
            0
        };
        actions_total += actions;
        let latency_ms = outcome.app_latency[&app].map_or(f64::NAN, |l| l * 1e3);
        let tput = outcome.app_throughput[&app];
        let ok = !outcome.sla[&app].is_violation();
        if ok {
            sla_met += 1;
        }
        if interval >= cell.warmup && latency_ms.is_finite() {
            lat_weight += latency_ms * tput;
            tput_sum += tput;
        }
        let machines = sim.replicas_of(app).len();
        rows.push_str(&format!(
            "{id},{},{},{},{},{},{interval},{latency_ms:.3},{tput:.2},{},{actions},{machines}\n",
            cell.seed,
            cell.replicas,
            cell.workload,
            cell.mrc.canonical(),
            cell.controller,
            u8::from(ok),
        ));
    }
    let wall = start.elapsed();
    tracer.flush();
    let (digest, events) = {
        let d = digest.borrow();
        (d.digest(), d.events())
    };
    let mean_lat = if tput_sum > 0.0 {
        lat_weight / tput_sum
    } else {
        f64::NAN
    };
    let measured = cell.intervals - cell.warmup;
    let summary = format!(
        "{id}  {:<12} {:<14} {:>7.3} ms  {:>9.2} q/s  sla {sla_met}/{}  actions {actions_total:>3}  \
         digest {digest:#018x}",
        cell.controller,
        cell.mrc.canonical(),
        mean_lat,
        tput_sum / measured.max(1) as f64,
        cell.intervals,
    );
    CellResult {
        rows,
        row_count: cell.intervals,
        digest,
        events: sim.events_processed().max(events),
        summary,
        wall,
    }
}

/// How a sweep invocation should run.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads for cell execution.
    pub jobs: usize,
    /// Output directory (cells live under `<out>/cells/`).
    pub out_dir: PathBuf,
    /// Shared-trace memoization (`false` = regenerate per cell).
    pub memo: bool,
    /// Stop (gracefully, resumably) after this many cells committed.
    pub max_cells: Option<usize>,
}

/// What a sweep invocation produced.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Cells in the expanded (deduplicated) matrix.
    pub total_cells: usize,
    /// Exact-duplicate configs dropped during expansion.
    pub duplicates: usize,
    /// Cells skipped because a valid `CELL_OK` manifest existed.
    pub skipped: usize,
    /// Cells executed this invocation.
    pub ran: usize,
    /// True when `max_cells` stopped the sweep before completion (no
    /// merge is written; re-run to resume).
    pub interrupted: bool,
    /// Total simulated events across all cells (merged sweeps only).
    pub events: u64,
    /// Per-cell status lines in canonical order. Deterministic for a
    /// given starting state: no wall-clock content.
    pub log: String,
    /// Wall clock of every cell executed this invocation, keyed by cell
    /// directory name, in commit order.
    pub cell_walls: Vec<(String, Duration)>,
    /// Path of the merged CSV (written unless interrupted).
    pub csv_path: PathBuf,
    /// Path of the merged summary table (written unless interrupted).
    pub summary_path: PathBuf,
}

/// Parsed-back fields of a `CELL_OK` manifest.
struct Manifest {
    digest: u64,
    events: u64,
    summary: String,
}

fn manifest_text(cell: &CellConfig, res: &CellResult) -> String {
    format!(
        "canonical={}\nhash={}\ndigest={:#018x}\nevents={}\nrows={}\nsummary={}\n",
        cell.canonical(),
        cell.dir_name(),
        res.digest,
        res.events,
        res.row_count,
        res.summary,
    )
}

/// Reads and validates a cell's manifest. `None` means "not completed":
/// missing, truncated, or written for a different config (a content-hash
/// collision in the directory name would surface here as a canonical
/// mismatch and force a re-run).
fn read_manifest(dir: &std::path::Path, cell: &CellConfig) -> Option<Manifest> {
    let text = std::fs::read_to_string(dir.join("CELL_OK")).ok()?;
    let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
    for line in text.lines() {
        let (k, v) = line.split_once('=')?;
        fields.insert(k, v);
    }
    if *fields.get("canonical")? != cell.canonical() || *fields.get("hash")? != cell.dir_name() {
        return None;
    }
    let rows: usize = fields.get("rows")?.parse().ok()?;
    let csv = std::fs::read_to_string(dir.join("cell.csv")).ok()?;
    if csv.lines().count() != rows {
        return None;
    }
    let digest = fields.get("digest")?.strip_prefix("0x")?;
    Some(Manifest {
        digest: u64::from_str_radix(digest, 16).ok()?,
        events: fields.get("events")?.parse().ok()?,
        summary: fields.get("summary")?.to_string(),
    })
}

/// Runs (or resumes) a sweep. See the module docs for the layout and
/// guarantees; errors are I/O problems with the output directory.
pub fn run_sweep(spec: &MatrixSpec, opts: &SweepOptions) -> Result<SweepOutcome, String> {
    let (cells, duplicates) = expand(spec);
    let cells_dir = opts.out_dir.join("cells");
    std::fs::create_dir_all(&cells_dir)
        .map_err(|e| format!("{}: cannot create: {e}", cells_dir.display()))?;

    // Resume scan: a valid manifest marks a cell done.
    let mut done: Vec<Option<Manifest>> = cells
        .iter()
        .map(|c| read_manifest(&cells_dir.join(c.dir_name()), c))
        .collect();
    let skipped = done.iter().filter(|d| d.is_some()).count();
    let mut pending: Vec<usize> = (0..cells.len()).filter(|&i| done[i].is_none()).collect();
    let interrupted = opts.max_cells.is_some_and(|k| k < pending.len());
    if let Some(k) = opts.max_cells {
        pending.truncate(k);
    }

    // Memoized schedule generation, once per workload key, in first-use
    // order. Generation happens up front on the commit thread so each
    // worker replays a shared immutable schedule.
    let mut schedules: BTreeMap<String, Arc<GeneratedSchedule>> = BTreeMap::new();
    if opts.memo {
        for &i in &pending {
            let cell = &cells[i];
            schedules.entry(cell.trace_key()).or_insert_with(|| {
                Arc::new(generate_schedule(
                    &cell_workload(&cell.workload),
                    &schedule_config(cell),
                ))
            });
        }
    }

    let jobs: Vec<Job<CellResult>> = pending
        .iter()
        .map(|&i| {
            let cell = cells[i].clone();
            let shared = schedules.get(&cell.trace_key()).cloned();
            let job: Job<CellResult> = Box::new(move || {
                let start = Instant::now();
                // Cold path (--no-memo): generation is part of the cell,
                // which is exactly the cost memoization removes.
                let schedule = shared.unwrap_or_else(|| {
                    Arc::new(generate_schedule(
                        &cell_workload(&cell.workload),
                        &schedule_config(&cell),
                    ))
                });
                let mut res = run_cell(&cell, schedule);
                res.wall = start.elapsed();
                res
            });
            job
        })
        .collect();

    let mut cell_walls = Vec::with_capacity(pending.len());
    let mut io_error: Option<String> = None;
    run_ordered(jobs, opts.jobs.max(1), |j, res| {
        if io_error.is_some() {
            return;
        }
        let i = pending[j];
        let dir = cells_dir.join(cells[i].dir_name());
        let commit = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(&dir)?;
            std::fs::write(dir.join("cell.csv"), &res.rows)?;
            // The manifest is written last: its presence certifies the
            // cell, so a crash between the two writes re-runs the cell.
            std::fs::write(dir.join("CELL_OK"), manifest_text(&cells[i], &res))?;
            Ok(())
        })();
        if let Err(e) = commit {
            io_error = Some(format!("{}: cannot commit cell: {e}", dir.display()));
            return;
        }
        cell_walls.push((cells[i].dir_name(), res.wall));
        done[i] = Some(Manifest {
            digest: res.digest,
            events: res.events,
            summary: res.summary.clone(),
        });
    });
    if let Some(e) = io_error {
        return Err(e);
    }
    let ran = cell_walls.len();

    // Status log, canonical order, no wall-clock content.
    let mut log = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let state = match &done[i] {
            _ if pending.contains(&i) => "ran",
            Some(_) => "cached",
            None => "deferred",
        };
        let digest = done[i]
            .as_ref()
            .map_or("-".to_string(), |m| format!("{:#018x}", m.digest));
        log.push_str(&format!(
            "cell {} [{state:>8}] {}  digest {digest}\n",
            cell.dir_name(),
            cell.canonical(),
        ));
    }

    let csv_path = opts.out_dir.join("sweep.csv");
    let summary_path = opts.out_dir.join("summary.txt");
    if interrupted {
        return Ok(SweepOutcome {
            total_cells: cells.len(),
            duplicates,
            skipped,
            ran,
            interrupted,
            events: 0,
            log,
            cell_walls,
            csv_path,
            summary_path,
        });
    }

    // Deterministic merge: every artifact is read back from disk in
    // canonical cell order, so fresh, resumed and re-merged sweeps write
    // byte-identical files at any job count.
    let mut csv = String::from(CSV_HEADER);
    let mut summary = format!("sweep {}: {} cells\n", spec.name, cells.len());
    let mut events = 0u64;
    for cell in &cells {
        let dir = cells_dir.join(cell.dir_name());
        let manifest = read_manifest(&dir, cell)
            .ok_or_else(|| format!("{}: manifest vanished during merge", dir.display()))?;
        let rows = std::fs::read_to_string(dir.join("cell.csv"))
            .map_err(|e| format!("{}: cannot read cell.csv: {e}", dir.display()))?;
        csv.push_str(&rows);
        summary.push_str(&manifest.summary);
        summary.push('\n');
        events += manifest.events;
    }
    summary.push_str(&format!("total simulated events: {events}\n"));
    std::fs::write(&csv_path, &csv).map_err(|e| format!("{}: {e}", csv_path.display()))?;
    std::fs::write(&summary_path, &summary)
        .map_err(|e| format!("{}: {e}", summary_path.display()))?;

    Ok(SweepOutcome {
        total_cells: cells.len(),
        duplicates,
        skipped,
        ran,
        interrupted,
        events,
        log,
        cell_walls,
        csv_path,
        summary_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
        # controller comparison at two seeds
        name = "mini"
        intervals = 3
        warmup = 1
        clients = 6
        seeds = [1, 2]
        workloads = ["zipf"]
        controllers = ["selective", "coarse"]
    "#;

    #[test]
    fn parser_reads_the_subset_and_applies_defaults() {
        let m = parse_matrix(MINI).unwrap();
        assert_eq!(m.name, "mini");
        assert_eq!(m.intervals, 3);
        assert_eq!(m.warmup, 1);
        assert_eq!(m.clients, 6);
        assert_eq!(m.seeds, vec![1, 2]);
        assert_eq!(m.replicas, vec![1], "default axis");
        assert_eq!(m.mrc, vec![CellMrc::Exact], "default axis");
        assert_eq!(m.workloads, vec!["zipf"]);
        assert_eq!(m.controllers, vec!["selective", "coarse"]);
        let (cells, dup) = expand(&m);
        assert_eq!(cells.len(), 4);
        assert_eq!(dup, 0);
    }

    #[test]
    fn parser_rejects_unknown_keys_sections_and_bad_values() {
        assert!(parse_matrix("bogus = 1")
            .unwrap_err()
            .contains("unknown key"));
        assert!(parse_matrix("[matrix]").unwrap_err().contains("sections"));
        assert!(parse_matrix("controllers = [\"tivoli\"]")
            .unwrap_err()
            .contains("unknown controller"));
        assert!(parse_matrix("workloads = [\"tpcc\"]")
            .unwrap_err()
            .contains("unknown workload"));
        assert!(parse_matrix("mrc = [\"sampled:2.0\"]")
            .unwrap_err()
            .contains("outside"));
        assert!(parse_matrix("intervals = 2\nwarmup = 2")
            .unwrap_err()
            .contains("warmup"));
        assert!(parse_matrix("seeds = []").unwrap_err().contains("empty"));
    }

    #[test]
    fn canonicalization_is_stable_and_discriminating() {
        let m = parse_matrix(MINI).unwrap();
        let (cells, _) = expand(&m);
        let canon: Vec<String> = cells.iter().map(|c| c.canonical()).collect();
        for (i, a) in canon.iter().enumerate() {
            for b in canon.iter().skip(i + 1) {
                assert_ne!(a, b, "distinct configs must canonicalise apart");
            }
        }
        // Re-parsing the same text yields identical hashes (cache keys
        // survive process restarts).
        let (again, _) = expand(&parse_matrix(MINI).unwrap());
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.content_hash(), b.content_hash());
            assert_eq!(a.dir_name().len(), 16);
        }
        // Sampled rates canonicalise at fixed precision.
        assert_eq!(
            CellMrc::parse("sampled:0.1").unwrap().canonical(),
            "sampled:0.1000"
        );
    }

    #[test]
    fn trace_key_ignores_controller_and_mrc_only() {
        let base = CellConfig {
            seed: 1,
            replicas: 2,
            workload: "tpcw".to_string(),
            mrc: CellMrc::Exact,
            controller: "selective".to_string(),
            intervals: 4,
            warmup: 1,
            clients: 10,
        };
        let mut variant = base.clone();
        variant.controller = "coarse".to_string();
        variant.mrc = CellMrc::Sampled(0.1);
        assert_eq!(base.trace_key(), variant.trace_key());
        assert_ne!(base.content_hash(), variant.content_hash());
        let mut other = base.clone();
        other.replicas = 3;
        assert_ne!(base.trace_key(), other.trace_key());
    }

    #[test]
    fn duplicate_axis_values_collapse() {
        let m = parse_matrix("seeds = [5, 5]\nintervals = 2\nwarmup = 0").unwrap();
        let (cells, dup) = expand(&m);
        assert_eq!(cells.len(), 1);
        assert_eq!(dup, 1);
    }

    #[test]
    fn manifest_round_trips_and_rejects_mismatches() {
        let m =
            parse_matrix("intervals = 2\nwarmup = 0\nclients = 2\nworkloads = [\"zipf\"]").unwrap();
        let (cells, _) = expand(&m);
        let cell = &cells[0];
        let res = CellResult {
            rows: "r1\nr2\n".to_string(),
            row_count: 2,
            digest: 0xdead_beef,
            events: 123,
            summary: "summary line".to_string(),
            wall: Duration::ZERO,
        };
        let dir = std::env::temp_dir().join(format!("odlb-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("cell.csv"), &res.rows).unwrap();
        std::fs::write(dir.join("CELL_OK"), manifest_text(cell, &res)).unwrap();
        let m = read_manifest(&dir, cell).expect("valid manifest");
        assert_eq!(m.digest, 0xdead_beef);
        assert_eq!(m.events, 123);
        assert_eq!(m.summary, "summary line");
        // A different config must not claim this cell.
        let mut other = cell.clone();
        other.seed += 1;
        assert!(read_manifest(&dir, &other).is_none());
        // A truncated row file invalidates the manifest.
        std::fs::write(dir.join("cell.csv"), "r1\n").unwrap();
        assert!(read_manifest(&dir, cell).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
