//! Microbenchmarks for the buffer pool: access throughput on the shared
//! pool vs the partitioned pool (quota routing overhead), and prefetch
//! installation.

use odlb_bench::harness::{black_box, Bench};
use odlb_bufferpool::{BufferPool, PartitionedPool};
use odlb_metrics::{AppId, ClassId};
use odlb_storage::{PageId, SpaceId};

fn access_trace(n: usize) -> Vec<(ClassId, PageId)> {
    let mut x: u64 = 0xABCDEF;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let class = ClassId::new(AppId(0), (x % 14) as u32);
            let page = PageId::new(SpaceId((x >> 8) as u32 % 4), (x >> 16) % 12_000);
            (class, page)
        })
        .collect()
}

fn main() {
    let mut bench = Bench::named("bufferpool");
    let trace = access_trace(100_000);

    bench.bench_elements("bufferpool_access/shared_8192", trace.len() as u64, || {
        let mut pool = BufferPool::new(8192);
        for &(class, page) in &trace {
            black_box(pool.access(class, page));
        }
    });

    bench.bench_elements(
        "bufferpool_access/partitioned_8192_one_quota",
        trace.len() as u64,
        || {
            let mut pool = PartitionedPool::new(8192);
            pool.set_quota(ClassId::new(AppId(0), 8), 2048).unwrap();
            for &(class, page) in &trace {
                black_box(pool.access(class, page));
            }
        },
    );

    let mut pool = BufferPool::new(8192);
    let class = ClassId::new(AppId(0), 8);
    let mut base = 0u64;
    bench.bench("prefetch_extent_64", || {
        base += 64;
        black_box(pool.prefetch(class, (0..64).map(|i| PageId::new(SpaceId(0), base + i))))
    });
}
