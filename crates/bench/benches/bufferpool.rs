//! Microbenchmarks for the buffer pool: access throughput on the shared
//! pool vs the partitioned pool (quota routing overhead), and prefetch
//! installation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use odlb_bufferpool::{BufferPool, PartitionedPool};
use odlb_metrics::{AppId, ClassId};
use odlb_storage::{PageId, SpaceId};

fn access_trace(n: usize) -> Vec<(ClassId, PageId)> {
    let mut x: u64 = 0xABCDEF;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let class = ClassId::new(AppId(0), (x % 14) as u32);
            let page = PageId::new(SpaceId((x >> 8) as u32 % 4), (x >> 16) % 12_000);
            (class, page)
        })
        .collect()
}

fn bench_pools(c: &mut Criterion) {
    let trace = access_trace(100_000);
    let mut group = c.benchmark_group("bufferpool_access");
    group.throughput(Throughput::Elements(trace.len() as u64));

    group.bench_function("shared_8192", |b| {
        b.iter(|| {
            let mut pool = BufferPool::new(8192);
            for &(class, page) in &trace {
                black_box(pool.access(class, page));
            }
        })
    });

    group.bench_function("partitioned_8192_one_quota", |b| {
        b.iter(|| {
            let mut pool = PartitionedPool::new(8192);
            pool.set_quota(ClassId::new(AppId(0), 8), 2048).unwrap();
            for &(class, page) in &trace {
                black_box(pool.access(class, page));
            }
        })
    });

    group.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    c.bench_function("prefetch_extent_64", |b| {
        let mut pool = BufferPool::new(8192);
        let class = ClassId::new(AppId(0), 8);
        let mut base = 0u64;
        b.iter(|| {
            base += 64;
            black_box(pool.prefetch(
                class,
                (0..64).map(|i| PageId::new(SpaceId(0), base + i)),
            ))
        })
    });
}

criterion_group!(benches, bench_pools, bench_prefetch);
criterion_main!(benches);
