//! Microbenchmarks for the telemetry subsystem: histogram record /
//! quantile / merge cost, labelled-series lookup through the registry,
//! and — the one the hot-path discipline rests on — the per-query cost
//! of an *unattached* `Telemetry` handle, which must stay at a branch.

use odlb_bench::harness::{black_box, Bench};
use odlb_telemetry::{LogLinearHistogram, Telemetry};

/// Deterministic latency-like sample stream: log-uniform-ish values from
/// a splitmix-style generator, spanning microseconds to seconds.
fn samples(n: usize) -> Vec<u64> {
    let mut x: u64 = 0x243F6A8885A308D3;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let magnitude = 1u64 << (x % 21); // 1 .. ~1e6
            magnitude + (x >> 32) % magnitude.max(1)
        })
        .collect()
}

fn main() {
    let mut bench = Bench::named("telemetry");
    let vals = samples(100_000);

    bench.bench_elements("telemetry/histogram_record/100k", vals.len() as u64, || {
        let mut h = LogLinearHistogram::default();
        for &v in &vals {
            h.record(black_box(v));
        }
        black_box(h.count())
    });

    let mut filled = LogLinearHistogram::default();
    for &v in &vals {
        filled.record(v);
    }
    bench.bench("telemetry/histogram_quantile/p50_p95_p99", || {
        black_box((
            filled.quantile(0.5),
            filled.quantile(0.95),
            filled.quantile(0.99),
        ))
    });

    let mut other = LogLinearHistogram::default();
    for &v in samples(50_000).iter() {
        other.record(v * 3 + 1);
    }
    bench.bench("telemetry/histogram_merge", || {
        let mut merged = filled.clone();
        merged.merge(black_box(&other));
        black_box(merged.count())
    });

    let active = Telemetry::attached();
    bench.bench_elements("telemetry/registry_record/10k", 10_000, || {
        let h = active
            .histogram(
                "odlb_query_latency_us",
                "Latency.",
                &[("class", "app0#8"), ("instance", "inst0")],
            )
            .unwrap();
        for &v in vals[..10_000].iter() {
            h.record(black_box(v));
        }
        black_box(())
    });

    // The guard every emission site uses: with no registry attached the
    // whole telemetry path must collapse to one branch per query.
    let inactive = Telemetry::inactive();
    bench.bench_elements("telemetry/disabled_handle/10k_queries", 10_000, || {
        let mut recorded = 0u64;
        for &v in vals[..10_000].iter() {
            if inactive.is_active() {
                if let Some(h) = inactive.histogram("odlb_query_latency_us", "Latency.", &[]) {
                    h.record(v);
                }
            } else {
                recorded += black_box(v) & 1;
            }
        }
        black_box(recorded)
    });
}
