//! Microbenchmark for the outlier detection pipeline: full weighted
//! detection across all six metrics as the class population grows. The
//! paper stresses its technique is "lightweight"; this quantifies it.

use odlb_bench::harness::{black_box, Bench};
use odlb_metrics::{AppId, ClassId, MetricKind, MetricVector};
use odlb_outlier::{detect, OutlierConfig};
use std::collections::BTreeMap;

#[allow(clippy::type_complexity)]
fn population(
    n: u32,
) -> (
    BTreeMap<ClassId, MetricVector>,
    BTreeMap<ClassId, MetricVector>,
) {
    let mut current = BTreeMap::new();
    let mut stable = BTreeMap::new();
    for t in 0..n {
        let class = ClassId::new(AppId(t % 4), t);
        let base = MetricVector::from_fn(|k| match k {
            MetricKind::Latency => 0.1 + t as f64 * 0.001,
            MetricKind::Throughput => 10.0 + t as f64,
            _ => 100.0 + (t as f64 * 37.0) % 900.0,
        });
        let mut cur = base;
        if t % 17 == 0 {
            cur[MetricKind::BufferMisses] *= 8.0; // sprinkle outliers
        }
        stable.insert(class, base);
        current.insert(class, cur);
    }
    (current, stable)
}

fn main() {
    let mut bench = Bench::named("outlier");
    for &n in &[14u32, 50, 200, 1_000] {
        let (current, stable) = population(n);
        bench.bench(&format!("outlier_detect/{n}"), || {
            let report = detect(&OutlierConfig::default(), black_box(&current), |c| {
                stable.get(&c).copied()
            });
            black_box(report.outlier_contexts().len())
        });
    }
}
