//! Microbenchmark for the outlier detection pipeline: full weighted
//! detection across all six metrics as the class population grows. The
//! paper stresses its technique is "lightweight"; this quantifies it.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use odlb_metrics::{AppId, ClassId, MetricKind, MetricVector};
use odlb_outlier::{detect, OutlierConfig};
use std::collections::BTreeMap;

fn population(n: u32) -> (BTreeMap<ClassId, MetricVector>, BTreeMap<ClassId, MetricVector>) {
    let mut current = BTreeMap::new();
    let mut stable = BTreeMap::new();
    for t in 0..n {
        let class = ClassId::new(AppId(t % 4), t);
        let base = MetricVector::from_fn(|k| match k {
            MetricKind::Latency => 0.1 + t as f64 * 0.001,
            MetricKind::Throughput => 10.0 + t as f64,
            _ => 100.0 + (t as f64 * 37.0) % 900.0,
        });
        let mut cur = base;
        if t % 17 == 0 {
            cur[MetricKind::BufferMisses] *= 8.0; // sprinkle outliers
        }
        stable.insert(class, base);
        current.insert(class, cur);
    }
    (current, stable)
}

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("outlier_detect");
    for &n in &[14u32, 50, 200, 1_000] {
        let (current, stable) = population(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let report = detect(&OutlierConfig::default(), black_box(&current), |c| {
                    stable.get(&c).copied()
                });
                black_box(report.outlier_contexts().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
