//! Microbenchmarks for the ordered worker pool behind `experiments
//! --jobs`: per-job dispatch overhead (claim → run → ordered commit)
//! for trivial jobs, sequentially and across worker counts. Figure jobs
//! run for seconds, so dispatch must stay in the microsecond range for
//! the pool to be pure win.

use odlb_bench::harness::{black_box, Bench};
use odlb_bench::runner::{run_ordered, Job};

/// `n` near-trivial jobs (a little arithmetic so the closure cannot be
/// optimised away entirely).
fn trivial_jobs(n: usize) -> Vec<Job<u64>> {
    (0..n as u64)
        .map(|i| Box::new(move || black_box(i).wrapping_mul(0x9E3779B97F4A7C15)) as Job<u64>)
        .collect()
}

fn main() {
    let mut bench = Bench::named("runner");

    for threads in [1usize, 2, 4] {
        bench.bench_elements(
            &format!("runner/dispatch_256_trivial/threads={threads}"),
            256,
            || {
                let mut acc = 0u64;
                run_ordered(trivial_jobs(256), threads, |_, v| acc = acc.wrapping_add(v));
                black_box(acc)
            },
        );
    }

    // The commit path alone: jobs are free, the committer folds a value —
    // bounds the in-order hand-off cost when results are tiny.
    bench.bench_elements("runner/commit_1k_inline/threads=1", 1_000, || {
        let mut acc = 0u64;
        run_ordered(trivial_jobs(1_000), 1, |i, v| {
            acc = acc.wrapping_add(v ^ i as u64)
        });
        black_box(acc)
    });
}
