//! Full-workspace static-analysis cost: wall time for `odlb-lint`'s
//! complete pass over the live workspace, split into its four phases
//! (lex → parse → graph → taint) via the span profiler. The CI promise
//! that the analyzer is cheap enough to run on every push is pinned
//! here: the full pass must finish well under five seconds.

use odlb_bench::harness::{black_box, Bench};
use odlb_lint::graph::FileUnit;
use odlb_lint::taint::SANCTIONS;
use odlb_lint::{analyze_sources, graph, lexer, parse, policy_for, taint, SourceFile};
use odlb_telemetry::SpanProfiler;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn live_sources() -> Vec<SourceFile> {
    let root = workspace_root();
    let mut paths = Vec::new();
    collect_rs(&root, &mut paths);
    paths
        .into_iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(&root)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            policy_for(&rel)?;
            let text = std::fs::read_to_string(&p).ok()?;
            Some(SourceFile { rel, text })
        })
        .collect()
}

fn main() {
    let mut bench = Bench::merged("experiments");
    let files = live_sources();
    let total_bytes: usize = files.iter().map(|f| f.text.len()).sum();

    // Phase split: run the pipeline once, each stage under its own span.
    let mut prof = SpanProfiler::new();
    let start = Instant::now();
    let lexed: Vec<_> = prof.time("lint/lex", || {
        files.iter().map(|f| lexer::lex(&f.text)).collect()
    });
    let parsed: Vec<_> = prof.time("lint/parse", || {
        lexed.iter().map(parse::parse_file).collect()
    });
    let units: Vec<FileUnit> = files
        .iter()
        .zip(lexed.into_iter().zip(parsed))
        .map(|(f, (lexed, parsed))| FileUnit {
            rel: f.rel.clone(),
            lexed,
            parsed,
        })
        .collect();
    let call_graph = prof.time("lint/graph", || graph::build(&units));
    let result = prof.time("lint/taint", || {
        taint::analyze(&units, &call_graph, &SANCTIONS)
    });
    let full = start.elapsed();
    assert!(
        result.diagnostics.is_empty(),
        "benchmark expects a taint-clean workspace: {:#?}",
        result.diagnostics
    );
    assert!(
        full.as_secs_f64() < 5.0,
        "full analysis took {full:?}; the on-every-push CI gate is 5 s"
    );

    for (phase, stats) in prof.phases() {
        bench.record_wall(phase, stats.total);
    }
    bench.record_wall("lint/full_workspace_wall", full);

    // Steady-state cost of the public entry point over in-memory sources
    // (what the CI job and the workspace-clean test actually pay).
    bench.bench_elements(
        "lint/analyze_sources/full_workspace",
        total_bytes as u64,
        || black_box(analyze_sources(black_box(&files)).len()),
    );
}
