//! End-to-end engine microbenchmark: simulated queries per (wall-clock)
//! second through `DbEngine::execute`, warm and cold.

use odlb_bench::harness::{black_box, Bench};
use odlb_engine::{DbEngine, EngineConfig};
use odlb_sim::{SimRng, SimTime, Station};
use odlb_storage::{DiskModel, DomainId, SharedIoPath};
use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};

fn main() {
    let mut bench = Bench::named("engine");
    let workload = tpcw_workload(TpcwConfig::default());
    let mut rng = SimRng::new(99);
    let queries: Vec<_> = (0..2_000)
        .map(|_| workload.sample_query(&mut rng))
        .collect();

    bench.bench_elements(
        "engine_execute/tpcw_mix_2000_queries",
        queries.len() as u64,
        || {
            let mut engine = DbEngine::new(EngineConfig::default(), SimTime::ZERO);
            let mut cpu = Station::new(4);
            let mut io = SharedIoPath::new(DiskModel::default());
            let mut t = SimTime::ZERO;
            for q in &queries {
                let r = engine.execute(t, black_box(q), &mut cpu, &mut io, DomainId(1));
                engine.commit_record(r.record);
                t += odlb_sim::SimDuration::from_millis(5);
            }
            black_box(engine.close_interval(t).per_class.len())
        },
    );
}
