//! End-to-end engine microbenchmark: simulated queries per (wall-clock)
//! second through `DbEngine::execute`, warm and cold.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use odlb_engine::{DbEngine, EngineConfig};
use odlb_sim::{SimRng, SimTime, Station};
use odlb_storage::{DiskModel, DomainId, SharedIoPath};
use odlb_workload::tpcw::{tpcw_workload, TpcwConfig};

fn bench_execute(c: &mut Criterion) {
    let workload = tpcw_workload(TpcwConfig::default());
    let mut rng = SimRng::new(99);
    let queries: Vec<_> = (0..2_000)
        .map(|_| workload.sample_query(&mut rng))
        .collect();

    let mut group = c.benchmark_group("engine_execute");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.sample_size(20);

    group.bench_function("tpcw_mix_2000_queries", |b| {
        b.iter(|| {
            let mut engine = DbEngine::new(EngineConfig::default(), SimTime::ZERO);
            let mut cpu = Station::new(4);
            let mut io = SharedIoPath::new(DiskModel::default());
            let mut t = SimTime::ZERO;
            for q in &queries {
                let r = engine.execute(t, black_box(q), &mut cpu, &mut io, DomainId(1));
                engine.commit_record(r.record);
                t += odlb_sim::SimDuration::from_millis(5);
            }
            black_box(engine.close_interval(t).per_class.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_execute);
criterion_main!(benches);
