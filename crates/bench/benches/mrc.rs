//! Microbenchmarks for the MRC trackers: exact Mattson (Fenwick
//! formulation), the bucketed approximation, and the naive O(n) stack —
//! the speed side of ablation A5.

use odlb_bench::harness::{black_box, Bench};
use odlb_mrc::mattson::NaiveStack;
use odlb_mrc::{BucketedTracker, MattsonTracker};

/// Deterministic trace with a hot core and a long tail, `n` accesses over
/// `footprint` distinct keys.
fn trace(n: usize, footprint: u64) -> Vec<u64> {
    let mut x: u64 = 0x9E3779B97F4A7C15;
    (0..n)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if i % 4 != 0 {
                x % (footprint / 16).max(1) // hot core
            } else {
                x % footprint // tail
            }
        })
        .collect()
}

fn main() {
    let mut bench = Bench::named("mrc");
    for &footprint in &[1_000u64, 10_000, 100_000] {
        let t = trace(100_000, footprint);
        bench.bench_elements(
            &format!("mrc_tracker/mattson_exact/{footprint}"),
            t.len() as u64,
            || {
                let mut tracker = MattsonTracker::new(16_384);
                for &k in &t {
                    tracker.access(black_box(k));
                }
                black_box(tracker.accesses())
            },
        );
        bench.bench_elements(
            &format!("mrc_tracker/bucketed_1.5/{footprint}"),
            t.len() as u64,
            || {
                let mut tracker = BucketedTracker::new(16_384, 1.5);
                for &k in &t {
                    tracker.access(black_box(k));
                }
                black_box(tracker.curve().total_accesses())
            },
        );
    }
    // The naive stack is quadratic: bench on a small trace only.
    let small = trace(5_000, 1_000);
    bench.bench_elements("mrc_tracker/naive_stack/1000", small.len() as u64, || {
        let mut stack = NaiveStack::new();
        for &k in &small {
            black_box(stack.access(black_box(k)));
        }
    });

    let t = trace(200_000, 50_000);
    let mut tracker = MattsonTracker::new(16_384);
    for &k in &t {
        tracker.access(k);
    }
    let curve = tracker.into_curve();
    bench.bench("mrc_params_extraction", || {
        black_box(curve.params(black_box(16_384), black_box(0.05)))
    });
}
