//! Microbenchmarks for the MRC trackers: exact Mattson (Fenwick
//! formulation), the bucketed approximation, the SHARDS-style sampled
//! tracker, and the naive O(n) stack — the speed side of ablations A5
//! and A6.
//!
//! The sampled-vs-exact comparison (and its derived speedup record) is
//! merged into `BENCH_experiments.json` next to the figure wall-clocks,
//! so one file answers both "how long do the figures take" and "what
//! does sampling buy".

use odlb_bench::harness::{black_box, Bench};
use odlb_mrc::mattson::NaiveStack;
use odlb_mrc::{BucketedTracker, MattsonTracker, SampledTracker};
use std::time::Duration;

/// Deterministic trace with a hot core and a long tail, `n` accesses over
/// `footprint` distinct keys.
fn trace(n: usize, footprint: u64) -> Vec<u64> {
    let mut x: u64 = 0x9E3779B97F4A7C15;
    (0..n)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if i % 4 != 0 {
                x % (footprint / 16).max(1) // hot core
            } else {
                x % footprint // tail
            }
        })
        .collect()
}

fn main() {
    let mut bench = Bench::named("mrc");
    for &footprint in &[1_000u64, 10_000, 100_000] {
        let t = trace(100_000, footprint);
        bench.bench_elements(
            &format!("mrc_tracker/mattson_exact/{footprint}"),
            t.len() as u64,
            || {
                let mut tracker = MattsonTracker::new(16_384);
                for &k in &t {
                    tracker.access(black_box(k));
                }
                black_box(tracker.accesses())
            },
        );
        bench.bench_elements(
            &format!("mrc_tracker/bucketed_1.5/{footprint}"),
            t.len() as u64,
            || {
                let mut tracker = BucketedTracker::new(16_384, 1.5);
                for &k in &t {
                    tracker.access(black_box(k));
                }
                black_box(tracker.curve().total_accesses())
            },
        );
    }
    // The naive stack is quadratic: bench on a small trace only.
    let small = trace(5_000, 1_000);
    bench.bench_elements("mrc_tracker/naive_stack/1000", small.len() as u64, || {
        let mut stack = NaiveStack::new();
        for &k in &small {
            black_box(stack.access(black_box(k)));
        }
    });

    let t = trace(200_000, 50_000);
    let mut tracker = MattsonTracker::new(16_384);
    for &k in &t {
        tracker.access(k);
    }
    let curve = tracker.into_curve();
    bench.bench("mrc_params_extraction", || {
        black_box(curve.params(black_box(16_384), black_box(0.05)))
    });
    drop(bench);

    // Sampled vs exact on a wide uniform trace (well over 100k distinct
    // keys, where exact tracking is at its most expensive). Results and
    // the derived speedup merge into BENCH_experiments.json; the R=0.01
    // speedup record is the acceptance gate (≥ 10x).
    let mut merged = Bench::merged("experiments");
    let wide = uniform_trace(300_000, 150_000);
    merged.bench_elements("mrc_tracker/exact/wide_150k", wide.len() as u64, || {
        let mut tracker = MattsonTracker::new(16_384);
        for &k in &wide {
            tracker.access(black_box(k));
        }
        black_box(tracker.accesses())
    });
    for &rate in &[0.1, 0.01] {
        merged.bench_elements(
            &format!("mrc_tracker/sampled_r{rate}/wide_150k"),
            wide.len() as u64,
            || {
                let mut tracker = SampledTracker::new(16_384, rate);
                for &k in &wide {
                    tracker.access(black_box(k));
                }
                black_box(tracker.sampled_refs())
            },
        );
    }
    // The speedup record carries the ratio in ns_per_op (unit-free; see
    // the name). Skipped when a CLI filter excluded either side.
    if let (Some(exact_ns), Some(sampled_ns)) = (
        merged.mean_ns_of("mrc_tracker/exact/wide_150k"),
        merged.mean_ns_of("mrc_tracker/sampled_r0.01/wide_150k"),
    ) {
        let speedup = exact_ns / sampled_ns.max(1);
        merged.record_wall(
            "mrc_tracker/sampled_speedup_x_r0.01/wide_150k",
            Duration::from_nanos(speedup as u64),
        );
        println!("sampled R=0.01 speedup over exact: {speedup}x (gate: >=10x)");
    }
}

/// Uniform random trace: `n` accesses spread over `footprint` keys, the
/// worst case for exact tracking (huge live stack, no hot core).
fn uniform_trace(n: usize, footprint: u64) -> Vec<u64> {
    let mut x: u64 = 0x2545F4914F6CDD1D;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x % footprint
        })
        .collect()
}
