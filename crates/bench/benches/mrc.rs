//! Microbenchmarks for the MRC trackers: exact Mattson (Fenwick
//! formulation), the bucketed approximation, and the naive O(n) stack —
//! the speed side of ablation A5.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use odlb_mrc::mattson::NaiveStack;
use odlb_mrc::{BucketedTracker, MattsonTracker};

/// Deterministic trace with a hot core and a long tail, `n` accesses over
/// `footprint` distinct keys.
fn trace(n: usize, footprint: u64) -> Vec<u64> {
    let mut x: u64 = 0x9E3779B97F4A7C15;
    (0..n)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if i % 4 != 0 {
                x % (footprint / 16).max(1) // hot core
            } else {
                x % footprint // tail
            }
        })
        .collect()
}

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrc_tracker");
    for &footprint in &[1_000u64, 10_000, 100_000] {
        let t = trace(100_000, footprint);
        group.throughput(Throughput::Elements(t.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("mattson_exact", footprint),
            &t,
            |b, t| {
                b.iter(|| {
                    let mut tracker = MattsonTracker::new(16_384);
                    for &k in t {
                        tracker.access(black_box(k));
                    }
                    black_box(tracker.accesses())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bucketed_1.5", footprint),
            &t,
            |b, t| {
                b.iter(|| {
                    let mut tracker = BucketedTracker::new(16_384, 1.5);
                    for &k in t {
                        tracker.access(black_box(k));
                    }
                    black_box(tracker.curve().total_accesses())
                })
            },
        );
    }
    // The naive stack is quadratic: bench on a small trace only.
    let small = trace(5_000, 1_000);
    group.throughput(Throughput::Elements(small.len() as u64));
    group.bench_with_input(BenchmarkId::new("naive_stack", 1_000), &small, |b, t| {
        b.iter(|| {
            let mut stack = NaiveStack::new();
            for &k in t {
                black_box(stack.access(black_box(k)));
            }
        })
    });
    group.finish();
}

fn bench_params(c: &mut Criterion) {
    let t = trace(200_000, 50_000);
    let mut tracker = MattsonTracker::new(16_384);
    for &k in &t {
        tracker.access(k);
    }
    let curve = tracker.into_curve();
    c.bench_function("mrc_params_extraction", |b| {
        b.iter(|| black_box(curve.params(black_box(16_384), black_box(0.05))))
    });
}

criterion_group!(benches, bench_trackers, bench_params);
criterion_main!(benches);
