//! Microbenchmarks for the simulation event queue: the calendar-queue
//! `EventQueue` against the retained `BinaryHeapEventQueue` oracle, in
//! the fig-scale regime — ~1M resident events with think-time-scattered
//! timestamps plus a hold (pop-one-push-one) steady state.
//!
//! The calendar-vs-heap comparison and its derived speedup record merge
//! into `BENCH_experiments.json` next to the figure wall-clocks; the
//! hold-pattern speedup record is the acceptance gate (≥ 2x).

use odlb_bench::harness::{black_box, Bench};
use odlb_sim::{BinaryHeapEventQueue, EventQueue, SimDuration, SimTime};
use std::time::Duration;

/// Deterministic splitmix64 stream (shared by both queues, so the
/// workloads are identical event for event).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Timestamps in the fig-scale shape: `n` events scattered over a 200 s
/// horizon (sessions sleeping out exponential-ish think times).
fn timestamps(n: usize) -> Vec<SimTime> {
    let mut state = 0x0123_4567_89ab_cdefu64;
    (0..n)
        .map(|_| SimTime::from_micros(splitmix(&mut state) % 200_000_000))
        .collect()
}

/// Relative think-time delays for the hold phase.
fn delays(n: usize) -> Vec<SimDuration> {
    let mut state = 0xdead_beef_cafe_f00du64;
    (0..n)
        .map(|_| SimDuration::from_micros(splitmix(&mut state) % 400_000_000))
        .collect()
}

/// Resident events held by the queue throughout the hold phase.
const RESIDENT: usize = 1_000_000;
/// Pop+push pairs per timed hold iteration: small enough that the
/// harness gets several iterations inside its time budget (the derived
/// speedup uses the min, so more iterations = less scheduler noise).
const HOLD_OPS: usize = 100_000;

/// The driver's steady state: a queue holding `RESIDENT` events, each
/// pop rescheduling one event further out (a session finishing a query
/// and sleeping its think time).
fn hold<Q>(
    queue: &mut Q,
    pop: impl Fn(&mut Q) -> Option<(SimTime, u64)>,
    push: impl Fn(&mut Q, SimTime, u64),
    delays: &[SimDuration],
) -> u64 {
    let mut acc = 0u64;
    for d in delays {
        let (t, payload) = pop(queue).expect("queue stays resident");
        acc = acc.wrapping_add(payload);
        push(queue, t + *d, payload);
    }
    acc
}

fn main() {
    let stamps = timestamps(RESIDENT);
    let hold_delays = delays(HOLD_OPS);

    let mut merged = Bench::merged("experiments");
    // Fill + full drain, then the resident hold pattern, for both
    // implementations on identical inputs.
    merged.bench_elements("eventqueue/calendar_fill_drain/1m", RESIDENT as u64, || {
        let mut q = EventQueue::new();
        for (i, &t) in stamps.iter().enumerate() {
            q.schedule(t, i as u64);
        }
        let mut acc = 0u64;
        while let Some((_, p)) = q.pop() {
            acc = acc.wrapping_add(p);
        }
        black_box(acc)
    });
    merged.bench_elements("eventqueue/heap_fill_drain/1m", RESIDENT as u64, || {
        let mut q = BinaryHeapEventQueue::new();
        for (i, &t) in stamps.iter().enumerate() {
            q.schedule(t, i as u64);
        }
        let mut acc = 0u64;
        while let Some((_, p)) = q.pop() {
            acc = acc.wrapping_add(p);
        }
        black_box(acc)
    });

    // Hold phase: the queue is prefilled ONCE, outside the timed body;
    // each timed iteration runs `HOLD_OPS` pop+push pairs on the same
    // 1M-resident queue, so only the steady state — the driver's actual
    // hot loop — is measured. The clock just keeps advancing between
    // iterations.
    {
        let mut q = EventQueue::new();
        for (i, &t) in stamps.iter().enumerate() {
            q.schedule(t, i as u64);
        }
        merged.bench_elements("eventqueue/calendar_hold/100k", HOLD_OPS as u64, || {
            black_box(hold(
                &mut q,
                |q| q.pop(),
                |q, t, p| q.schedule(t, p),
                &hold_delays,
            ))
        });
    }
    {
        let mut q = BinaryHeapEventQueue::new();
        for (i, &t) in stamps.iter().enumerate() {
            q.schedule(t, i as u64);
        }
        merged.bench_elements("eventqueue/heap_hold/100k", HOLD_OPS as u64, || {
            black_box(hold(
                &mut q,
                |q| q.pop(),
                |q, t, p| q.schedule(t, p),
                &hold_delays,
            ))
        });
    }

    // The speedup records carry the ratio in ns_per_op (unit-free; see
    // the names). Ratios come from per-iteration minima — the
    // noise-robust statistic. Skipped when a CLI filter excluded either
    // side.
    for (phase, scale) in [("fill_drain", "1m"), ("hold", "100k")] {
        if let (Some(heap_ns), Some(cal_ns)) = (
            merged.min_ns_of(&format!("eventqueue/heap_{phase}/{scale}")),
            merged.min_ns_of(&format!("eventqueue/calendar_{phase}/{scale}")),
        ) {
            let speedup = heap_ns as f64 / cal_ns.max(1) as f64;
            merged.record_wall(
                &format!("eventqueue/calendar_speedup_x_{phase}/{scale}"),
                Duration::from_nanos(speedup.round() as u64),
            );
            println!(
                "calendar {phase} speedup over heap: {speedup:.2}x{}",
                if phase == "hold" { " (gate: >=2x)" } else { "" }
            );
        }
    }
}
