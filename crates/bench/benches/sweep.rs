//! Shared-trace memoization benchmark for the sweep jobserver: a
//! controller-variant-only matrix (one seed, one workload, one cluster
//! size, all four controller variants) runs once with trace memoization
//! and once with it disabled (`--no-memo` semantics: every cell
//! regenerates the schedule). Both paths produce byte-identical merged
//! artifacts — pinned here and in `tests/sweep_resume.rs` — so the only
//! difference is whether schedule generation is paid once per workload
//! key or once per cell.
//!
//! The derived min-based speedup record merges into
//! `BENCH_experiments.json` and is the acceptance gate (≥ 1.5x).

use odlb_bench::harness::{black_box, Bench};
use odlb_bench::sweep::{parse_matrix, run_sweep, SweepOptions};
use std::path::PathBuf;
use std::time::Duration;

/// One seed, one workload, one cluster size, four controller variants:
/// the matrix shape where memoization pays most — four cells, one
/// workload key.
const MATRIX: &str = r#"
name = "variants"
intervals = 4
warmup = 1
clients = 24
seeds = [42]
workloads = ["zipf"]
controllers = ["selective", "cpu-only", "coarse", "vm-migration"]
"#;

/// Wipes and re-runs the whole sweep; every iteration starts cold so no
/// `CELL_OK` cache survives into the timed body. Single worker on both
/// sides: the bench isolates memoization, not parallelism.
fn sweep_once(out_dir: &PathBuf, memo: bool) -> u64 {
    let _ = std::fs::remove_dir_all(out_dir);
    let spec = parse_matrix(MATRIX).expect("bench matrix parses");
    let out = run_sweep(
        &spec,
        &SweepOptions {
            jobs: 1,
            out_dir: out_dir.clone(),
            memo,
            max_cells: None,
        },
    )
    .expect("bench sweep runs");
    assert_eq!(out.ran, 4, "all four variant cells must execute");
    out.events
}

fn main() {
    let root = std::env::temp_dir().join(format!("odlb-sweep-bench-{}", std::process::id()));
    let memo_dir = root.join("memo");
    let cold_dir = root.join("cold");

    // Pre-run for the element count (total simulated events per sweep —
    // deterministic, identical on both paths).
    let events = sweep_once(&memo_dir, true);

    let mut merged = Bench::merged("experiments");
    merged.bench_elements("sweep/memo_4variants", events, || {
        black_box(sweep_once(&memo_dir, true))
    });
    merged.bench_elements("sweep/cold_4variants", events, || {
        black_box(sweep_once(&cold_dir, false))
    });

    // Min-based ratio (noise-robust), stored in centi-x so the 1.5 gate
    // survives integer storage. Skipped when a CLI filter excluded a side.
    if let (Some(cold_ns), Some(memo_ns)) = (
        merged.min_ns_of("sweep/cold_4variants"),
        merged.min_ns_of("sweep/memo_4variants"),
    ) {
        let speedup = cold_ns as f64 / memo_ns.max(1) as f64;
        merged.record_wall(
            "sweep/memo_speedup_centi_x/4variants",
            Duration::from_nanos((speedup * 100.0).round() as u64),
        );
        println!("sweep memo speedup over cold generation: {speedup:.2}x (gate: >=1.5x)");
    }

    let _ = std::fs::remove_dir_all(&root);
}
