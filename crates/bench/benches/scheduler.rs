//! Microbenchmarks for the scheduler tier: read/write routing and the
//! on-the-fly query template extraction.

use odlb_bench::harness::{black_box, Bench};
use odlb_cluster::{InstanceId, Scheduler};
use odlb_engine::TemplateRegistry;
use odlb_metrics::{AppId, ClassId};

fn main() {
    let mut bench = Bench::named("scheduler");
    for &replicas in &[2usize, 8, 32] {
        let sched = Scheduler::new(AppId(0), (0..replicas as u32).map(InstanceId).collect());
        let class = ClassId::new(AppId(0), 3);
        let mut i = 0u64;
        bench.bench(&format!("scheduler_route/read/{replicas}"), || {
            i += 1;
            black_box(sched.route_read(class, |inst| ((inst.0 as u64 * 31 + i) % 7) as usize))
        });
        let mut i = 0u64;
        bench.bench(&format!("scheduler_route/write_all/{replicas}"), || {
            i += 1;
            black_box(sched.route_write(class, |inst| ((inst.0 as u64 * 31 + i) % 7) as usize))
        });
    }

    let queries = [
        "SELECT * FROM item WHERE i_id = 42",
        "SELECT i_id, i_title FROM item, orders, order_line WHERE o_id = ol_o_id AND ol_i_id = i_id AND o_date > 873243 GROUP BY i_id ORDER BY COUNT(*) DESC LIMIT 50",
        "UPDATE shopping_cart_line SET scl_qty = 3 WHERE scl_sc_id = 991 AND scl_i_id = 17",
        "SELECT * FROM author WHERE a_lname = 'O''Brien'",
    ];
    let mut reg = TemplateRegistry::new();
    let mut i = 0usize;
    bench.bench("template_classify", || {
        i += 1;
        black_box(reg.classify(AppId(0), queries[i % queries.len()]))
    });
}
