//! Microbenchmarks for the scheduler tier: read/write routing and the
//! on-the-fly query template extraction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use odlb_cluster::{InstanceId, Scheduler};
use odlb_engine::TemplateRegistry;
use odlb_metrics::{AppId, ClassId};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_route");
    for &replicas in &[2usize, 8, 32] {
        let sched = Scheduler::new(
            AppId(0),
            (0..replicas as u32).map(InstanceId).collect(),
        );
        let class = ClassId::new(AppId(0), 3);
        group.bench_with_input(
            BenchmarkId::new("read", replicas),
            &replicas,
            |b, _| {
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    black_box(sched.route_read(class, |inst| {
                        ((inst.0 as u64 * 31 + i) % 7) as usize
                    }))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("write_all", replicas),
            &replicas,
            |b, _| {
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    black_box(sched.route_write(class, |inst| {
                        ((inst.0 as u64 * 31 + i) % 7) as usize
                    }))
                })
            },
        );
    }
    group.finish();
}

fn bench_templates(c: &mut Criterion) {
    let queries = [
        "SELECT * FROM item WHERE i_id = 42",
        "SELECT i_id, i_title FROM item, orders, order_line WHERE o_id = ol_o_id AND ol_i_id = i_id AND o_date > 873243 GROUP BY i_id ORDER BY COUNT(*) DESC LIMIT 50",
        "UPDATE shopping_cart_line SET scl_qty = 3 WHERE scl_sc_id = 991 AND scl_i_id = 17",
        "SELECT * FROM author WHERE a_lname = 'O''Brien'",
    ];
    c.bench_function("template_classify", |b| {
        let mut reg = TemplateRegistry::new();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(reg.classify(AppId(0), queries[i % queries.len()]))
        })
    });
}

criterion_group!(benches, bench_routing, bench_templates);
criterion_main!(benches);
