//! Explore any query class's miss ratio curve from the command line.
//!
//! ```text
//! cargo run --release --example mrc_explorer -- tpcw BestSeller
//! cargo run --release --example mrc_explorer -- rubis SearchItemsByRegion 200
//! cargo run --release --example mrc_explorer -- tpcw           # list classes
//! ```

use odlb::mrc::MattsonTracker;
use odlb::sim::SimRng;
use odlb::workload::rubis::{rubis_workload, RubisConfig};
use odlb::workload::tpcw::{tpcw_workload, TpcwConfig};
use odlb::workload::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload: WorkloadSpec = match args.first().map(String::as_str) {
        Some("tpcw") | None => tpcw_workload(TpcwConfig::default()),
        Some("tpcw-noindex") => tpcw_workload(TpcwConfig {
            odate_index: false,
            ..Default::default()
        }),
        Some("rubis") => rubis_workload(RubisConfig::default()),
        Some(other) => {
            eprintln!("unknown workload '{other}'; use tpcw | tpcw-noindex | rubis");
            std::process::exit(2);
        }
    };

    let Some(class_name) = args.get(1) else {
        println!("classes of {}:", workload.name);
        for (i, c) in workload.classes.iter().enumerate() {
            println!(
                "  #{i:<3} {:<24} weight {:>5.1}  ~{:>5} pages/query{}",
                c.name,
                c.weight,
                c.pattern.pages_per_query(),
                if c.is_write { "  [write]" } else { "" }
            );
        }
        return;
    };
    let Some(idx) = workload.class_index_by_name(class_name) else {
        eprintln!("no class named '{class_name}' in {}", workload.name);
        std::process::exit(2);
    };
    let queries: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let mut rng = SimRng::new(0xC0FFEE);
    let mut tracker = MattsonTracker::new(16_384);
    for _ in 0..queries {
        for page in workload.query_of_class(idx, &mut rng).pages {
            tracker.access(page);
        }
    }
    let curve = tracker.curve();
    let params = curve.params(16_384, 0.05);
    println!(
        "MRC of {}::{class_name} over {queries} executions ({} references)",
        workload.name,
        curve.total_accesses()
    );
    println!(
        "  total memory needed      {} pages (ideal miss ratio {:.4})",
        params.total_memory_needed, params.ideal_miss_ratio
    );
    println!(
        "  acceptable memory needed {} pages (acceptable miss ratio {:.4})",
        params.acceptable_memory_needed, params.acceptable_miss_ratio
    );
    println!("  pages    miss-ratio");
    for (size, mr) in curve.sampled(25) {
        println!(
            "  {size:>6}   {mr:.4} |{}",
            "#".repeat((mr * 50.0).round() as usize)
        );
    }
}
