//! A localized plan change: dropping the index behind one query (the
//! paper's §5.3 scenario). Watch the pipeline end to end: stable state →
//! SLA violation → IQR outlier detection → per-class MRC recomputation →
//! buffer-pool quota for the one guilty class.
//!
//! ```text
//! cargo run --release --example index_misconfiguration
//! ```

use odlb::cluster::{Simulation, SimulationConfig};
use odlb::core::{Action, ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb::engine::EngineConfig;
use odlb::metrics::Sla;
use odlb::storage::DomainId;
use odlb::workload::tpcw::{bestseller_pattern, tpcw_workload, TpcwConfig, BESTSELLER};
use odlb::workload::{ClientConfig, LoadFunction};

fn main() {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 7,
        ..Default::default()
    });
    let server = sim.add_server(4);
    let instance = sim.add_instance(server, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(50),
    );
    sim.assign_replica(app, instance);
    sim.start();
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());

    println!("— phase 1: reaching stable state —");
    for _ in 0..10 {
        let outcome = sim.run_interval();
        controller.on_interval(&mut sim, &outcome);
        if let Some(lat) = outcome.app_latency[&app] {
            println!("  t={} latency {lat:.3}s", outcome.end);
        }
    }

    println!("\n— phase 2: DROP INDEX o_date (BestSeller degenerates into a scan) —");
    sim.set_class_pattern(app, BESTSELLER, bestseller_pattern(false));

    for _ in 0..10 {
        let outcome = sim.run_interval();
        let violated = outcome.sla[&app].is_violation();
        if let Some(lat) = outcome.app_latency[&app] {
            println!(
                "  t={} latency {lat:.3}s {}",
                outcome.end,
                if violated { "SLA VIOLATION" } else { "" }
            );
        }
        for action in controller.on_interval(&mut sim, &outcome) {
            match &action {
                Action::DetectedOutliers { contexts, .. } => {
                    println!("    diagnosis: outlier contexts {contexts:?}");
                }
                Action::RecomputedMrc {
                    class,
                    acceptable_pages,
                    changed,
                    ..
                } => {
                    println!(
                        "    diagnosis: MRC of {class} -> acceptable {acceptable_pages} pages{}",
                        if *changed { " (plan changed!)" } else { "" }
                    );
                }
                other => println!("    action: {other}"),
            }
        }
    }
}
