//! Quickstart: build a two-server cluster, run TPC-W on it, and let the
//! selective retuning controller watch over the SLA.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use odlb::cluster::{Simulation, SimulationConfig};
use odlb::core::{ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb::engine::EngineConfig;
use odlb::metrics::Sla;
use odlb::storage::DomainId;
use odlb::workload::tpcw::{tpcw_workload, TpcwConfig};
use odlb::workload::{ClientConfig, LoadFunction};

fn main() {
    // 1. A cluster of two 4-core servers; one database instance with the
    //    paper's 128 MB (8192-page) buffer pool.
    let mut sim = Simulation::new(SimulationConfig {
        seed: 1,
        ..Default::default()
    });
    let server = sim.add_server(4);
    sim.add_server(4); // spare machine in the free pool
    let instance = sim.add_instance(server, DomainId(1), EngineConfig::default());

    // 2. TPC-W under the shopping mix, 30 closed-loop client sessions,
    //    1-second mean-latency SLA.
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(30),
    );
    sim.assign_replica(app, instance);
    sim.start();

    // 3. The paper's controller: stable-state tracking, outlier-driven
    //    diagnosis, MRC-validated memory actions.
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());

    println!("interval  end     latency   throughput  sla    actions");
    for i in 0..12 {
        let outcome = sim.run_interval();
        let actions = controller.on_interval(&mut sim, &outcome);
        println!(
            "{:>8}  {:>5}  {:>8}  {:>10.1}  {:>5}  {}",
            i,
            outcome.end.to_string(),
            outcome.app_latency[&app]
                .map(|l| format!("{l:.3}s"))
                .unwrap_or_else(|| "-".into()),
            outcome.app_throughput[&app],
            if outcome.sla[&app].is_violation() {
                "VIOL"
            } else {
                "ok"
            },
            actions.len(),
        );
        for action in actions {
            println!("          -> {action}");
        }
    }

    // 4. The stable-state store now holds per-(instance, class) signatures
    //    with MRC parameters — the controller's knowledge base.
    println!(
        "\nstable-state signatures recorded: {}",
        controller.stable_store().len()
    );
}
