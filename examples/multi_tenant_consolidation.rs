//! Server consolidation gone wrong: two applications multiplexed into one
//! DBMS and one buffer pool (the paper's §5.4 / Table 2 scenario). The
//! controller discovers that exactly one RUBiS query class cannot
//! co-locate with TPC-W and moves just that class to another replica —
//! instead of migrating a whole VM.
//!
//! ```text
//! cargo run --release --example multi_tenant_consolidation
//! ```

use odlb::cluster::{Simulation, SimulationConfig};
use odlb::core::{Action, ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb::engine::EngineConfig;
use odlb::metrics::{AppId, Sla};
use odlb::sim::SimTime;
use odlb::storage::DomainId;
use odlb::workload::rubis::{rubis_workload, RubisConfig};
use odlb::workload::tpcw::{tpcw_workload, TpcwConfig};
use odlb::workload::{ClientConfig, LoadFunction};

fn main() {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 22,
        ..Default::default()
    });
    let shared_server = sim.add_server(4);
    sim.add_server(4); // the free pool the controller can draw from
    let shared_instance = sim.add_instance(shared_server, DomainId(1), EngineConfig::default());

    let tpcw = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(45),
    );
    // RUBiS powers on at t = 100 s, consolidated into the SAME instance.
    let rubis = sim.add_app(
        rubis_workload(RubisConfig {
            app: AppId(1),
            ..Default::default()
        }),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Step {
            before: 0,
            after: 80,
            at: SimTime::from_secs(100),
        },
    );
    sim.assign_replica(tpcw, shared_instance);
    sim.assign_replica(rubis, shared_instance);
    sim.start();

    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    println!("time     tpcw-latency  rubis-latency  actions");
    for _ in 0..26 {
        let outcome = sim.run_interval();
        let fmt = |app: AppId| {
            outcome.app_latency[&app]
                .map(|l| format!("{l:.2}s"))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>6}  {:>12}  {:>13}",
            outcome.end.to_string(),
            fmt(tpcw),
            fmt(rubis)
        );
        for action in controller.on_interval(&mut sim, &outcome) {
            if !matches!(action, Action::DetectedOutliers { .. }) {
                println!("        -> {action}");
            }
        }
    }
    println!(
        "\nfinal TPC-W replicas: {:?}; RUBiS replicas: {:?}",
        sim.replicas_of(tpcw),
        sim.replicas_of(rubis)
    );
}
