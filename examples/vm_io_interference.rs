//! Xen's blind spot: two RUBiS tenants in separate VM domains on one
//! physical machine are isolated in CPU and memory — but their block I/O
//! funnels through the shared domain-0 back-end (the paper's §5.5 /
//! Table 3 scenario). The per-class I/O accounting pinpoints the single
//! query context responsible for most of the traffic.
//!
//! ```text
//! cargo run --release --example vm_io_interference
//! ```

use odlb::cluster::{Simulation, SimulationConfig};
use odlb::engine::EngineConfig;
use odlb::metrics::{AppId, MetricKind, Sla};
use odlb::sim::SimTime;
use odlb::storage::DomainId;
use odlb::workload::rubis::{rubis_workload, RubisConfig, SEARCH_ITEMS_BY_REGION};
use odlb::workload::{ClientConfig, LoadFunction};

fn main() {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 33,
        ..Default::default()
    });
    let machine = sim.add_server(4);
    // Two database instances, two VM domains, one spindle behind domain-0.
    let dom1 = sim.add_instance(machine, DomainId(1), EngineConfig::default());
    let dom2 = sim.add_instance(machine, DomainId(2), EngineConfig::default());

    let tenant1 = sim.add_app(
        rubis_workload(RubisConfig {
            app: AppId(0),
            ..Default::default()
        }),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(40),
    );
    let tenant2 = sim.add_app(
        rubis_workload(RubisConfig {
            app: AppId(1),
            ..Default::default()
        }),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Step {
            before: 0,
            after: 40,
            at: SimTime::from_secs(80),
        },
    );
    sim.assign_replica(tenant1, dom1);
    sim.assign_replica(tenant2, dom2);
    sim.start();

    println!("time    tenant1-latency  disk-util");
    let mut removed = false;
    for i in 0..24 {
        let outcome = sim.run_interval();
        println!(
            "{:>6}  {:>15}  {:>8.0}%",
            outcome.end.to_string(),
            outcome.app_latency[&tenant1]
                .map(|l| format!("{l:.2}s"))
                .unwrap_or_else(|| "-".into()),
            outcome.servers[0].io_utilisation * 100.0
        );
        // Administrator's-eye diagnosis after the collapse: which class
        // carries the I/O page traffic on domain 2?
        if i == 14 && !removed {
            let report = &outcome.reports[&dom2];
            let pages_of = |v: &odlb::metrics::MetricVector| {
                v[MetricKind::IoRequests] + 63.0 * v[MetricKind::ReadAheads]
            };
            let total: f64 = report.per_class.values().map(pages_of).sum();
            println!("\n  per-class share of domain-2 I/O page traffic:");
            for (class, v) in &report.per_class {
                let share = pages_of(v) / total.max(1e-9);
                if share > 0.02 {
                    println!("    {class}: {:.0}%", share * 100.0);
                }
            }
            println!("  -> removing SearchItemsByRegion from tenant 2 (the paper's remedy)\n");
            sim.set_class_weight(tenant2, SEARCH_ITEMS_BY_REGION, 0.0);
            removed = true;
        }
    }
}
