//! The paper's §7 future work, live: a write hotspot (one counter page)
//! serialises its query class after a plan regression makes each update
//! 15× slower. The same outlier machinery that finds memory interference
//! names the contended class through the per-class lock-wait metric.
//!
//! ```text
//! cargo run --release --example lock_contention
//! ```

use odlb::cluster::{Simulation, SimulationConfig};
use odlb::core::{Action, ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb::engine::EngineConfig;
use odlb::metrics::{AppId, ClassId, MetricKind, Sla};
use odlb::sim::SimDuration;
use odlb::storage::DomainId;
use odlb::workload::synthetic::hotspot_write_workload;
use odlb::workload::{ClientConfig, LoadFunction};

fn main() {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 61,
        ..Default::default()
    });
    let server = sim.add_server(8);
    let instance = sim.add_instance(server, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        hotspot_write_workload(AppId(0), 3),
        Sla::new(SimDuration::from_millis(10)),
        ClientConfig {
            think_time_mean: SimDuration::from_millis(200),
            load_noise: 0.0,
        },
        LoadFunction::Constant(25),
    );
    sim.assign_replica(app, instance);
    sim.start();
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    let idx = sim
        .workload(app)
        .class_index_by_name("CounterUpdate")
        .unwrap();
    let counter = ClassId::new(app, idx as u32);

    println!("time     latency    counter lock-wait (s/interval)");
    for i in 0..16 {
        if i == 8 {
            println!("\n-- plan regression: each CounterUpdate now takes 45 ms --\n");
            sim.set_class_cpu(
                app,
                idx,
                SimDuration::from_millis(45),
                SimDuration::from_micros(10),
            );
        }
        let outcome = sim.run_interval();
        let lock_wait = outcome.reports[&instance]
            .per_class
            .get(&counter)
            .map(|v| v[MetricKind::LockWaits])
            .unwrap_or(0.0);
        println!(
            "{:>6}  {:>8}  {:>10.2}",
            outcome.end.to_string(),
            outcome.app_latency[&app]
                .map(|l| format!("{:.1}ms", l * 1000.0))
                .unwrap_or_else(|| "-".into()),
            lock_wait
        );
        for action in controller.on_interval(&mut sim, &outcome) {
            if let Action::DetectedLockContention { class, ratio, .. } = &action {
                println!("        !! diagnosis: {class} lock waits {ratio:.0}x stable state");
            }
        }
    }
}
