//! Golden decision-trace regression tests.
//!
//! Each scenario runs a miniature, fully seeded experiment with the
//! decision tracer attached and pins (a) the run digest bit-for-bit and
//! (b) the key decision subsequence the paper's narrative predicts. Any
//! behavioural drift — an extra provisioning, a different quota, a
//! reordered diagnosis — changes the digest; the subsequence assertions
//! then say *what* drifted.
//!
//! If a deliberate behaviour change lands, re-run with `--nocapture`,
//! verify the printed decision stream is the intended one, and update the
//! pinned digest.

use odlb::trace::{ActionKind, DigestSink, RingBufferSink, TraceEvent, Tracer};
use odlb_bench::experiments::{fig3, fig4};

/// Fig. 3 miniature (seed 3_2007 inside `fig3::run_with`): sinusoid load
/// on 3 servers, 30 intervals with 10 warm-up.
const FIG3_GOLDEN_DIGEST: u64 = 0x3566ce12d71c2a53;
/// Fig. 4 miniature (seed 4_2007 inside `fig4::run_with`): 50 clients,
/// 12 stable intervals, 12 recovery intervals after the index drop.
const FIG4_GOLDEN_DIGEST: u64 = 0x7404072f86507903;

fn run_fig3() -> (u64, Vec<TraceEvent>) {
    let tracer = Tracer::new();
    let ring = tracer.attach(RingBufferSink::new(100_000));
    let digest = tracer.attach(DigestSink::new());
    fig3::run_with(tracer, 30, 10, 30, 480, 3);
    let events: Vec<TraceEvent> = ring.borrow().events().iter().cloned().collect();
    let d = digest.borrow().digest();
    (d, events)
}

fn run_fig4() -> (u64, Vec<TraceEvent>) {
    let tracer = Tracer::new();
    let ring = tracer.attach(RingBufferSink::new(100_000));
    let digest = tracer.attach(DigestSink::new());
    fig4::run_with(tracer, 50, 12, 12);
    let events: Vec<TraceEvent> = ring.borrow().events().iter().cloned().collect();
    let d = digest.borrow().digest();
    (d, events)
}

fn dump(events: &[TraceEvent]) {
    for e in events {
        println!("{}", e.to_json());
    }
}

#[test]
fn fig3_digest_and_provisioning_sequence_are_stable() {
    let (digest, events) = run_fig3();

    // The interval stream itself: 30 closes, strictly ordered.
    let closes: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::IntervalClosed { seq, .. } => Some(*seq),
            _ => None,
        })
        .collect();
    assert_eq!(closes, (0..30).collect::<Vec<u64>>());

    // The paper's fig. 3 narrative: the sinusoid peak saturates the CPU
    // and the controller reacts by provisioning at least one replica,
    // strictly after the warm-up (first 10 intervals = 100 s).
    let provisions: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ActionApplied {
                kind: ActionKind::ProvisionedReplica,
                end_us,
                ..
            } => Some(*end_us),
            _ => None,
        })
        .collect();
    if provisions.is_empty() {
        dump(&events);
        panic!("the sinusoid peak must trigger replica provisioning");
    }
    assert!(
        provisions.iter().all(|&t| t > 100_000_000),
        "provisioning before the controller was enabled: {provisions:?}"
    );
    // Fixed seed ⇒ the first provisioning interval is pinned exactly
    // (interval 11, t=110s: the first post-warm-up interval already
    // shows the rising slope saturating the single replica).
    assert_eq!(provisions[0], 110_000_000, "first provisioning moved");

    // SLA evaluations fire every interval for the single app.
    let sla_count = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::SlaEvaluated { .. }))
        .count();
    assert_eq!(sla_count, 30);

    if digest != FIG3_GOLDEN_DIGEST {
        dump(&events);
        panic!(
            "fig3 digest drifted: got {digest:#018x}, pinned {FIG3_GOLDEN_DIGEST:#018x} \
             ({} events)",
            events.len()
        );
    }
}

#[test]
fn fig4_digest_and_quota_sequence_are_stable() {
    let (digest, events) = run_fig4();

    // The paper's fig. 4 narrative after the O_DATE index drop:
    // (1) outlier findings flag BestSeller (template 8) as degraded;
    let bestseller_findings: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::OutlierFinding {
                    template: 8,
                    degradation: true,
                    ..
                }
            )
        })
        .collect();
    if bestseller_findings.is_empty() {
        dump(&events);
        panic!("BestSeller must be flagged as a degraded outlier");
    }

    // (2) MRC validation singles BestSeller out as changed;
    assert!(
        events.iter().any(|e| matches!(
            e,
            TraceEvent::MrcValidation {
                template: 8,
                changed: true,
                ..
            }
        )),
        "BestSeller's recomputed MRC must read as changed"
    );

    // (3) the remedy is a quota on BestSeller, on the shared instance.
    let quota = events.iter().find_map(|e| match e {
        TraceEvent::ActionApplied {
            kind: ActionKind::SetQuota,
            template: Some(8),
            pages,
            instance,
            ..
        } => Some((*pages, *instance)),
        _ => None,
    });
    let Some((pages, instance)) = quota else {
        dump(&events);
        panic!("the controller must quota BestSeller");
    };
    assert_eq!(instance, Some(0), "single-instance scenario");
    let pages = pages.expect("set_quota carries its page grant");
    assert!(pages > 0, "quota must grant pages");

    if digest != FIG4_GOLDEN_DIGEST {
        dump(&events);
        panic!(
            "fig4 digest drifted: got {digest:#018x}, pinned {FIG4_GOLDEN_DIGEST:#018x} \
             ({} events)",
            events.len()
        );
    }
}

#[test]
fn golden_runs_are_reproducible_within_process() {
    // The digests above are pinned constants; this guards the weaker but
    // independent property that two in-process runs agree (no hidden
    // global state leaks between simulations).
    assert_eq!(run_fig4().0, run_fig4().0);
}
