//! End-to-end integration scenarios across all crates: miniature versions
//! of the paper's evaluation flows, driven through the public facade.

use odlb::cluster::{Simulation, SimulationConfig};
use odlb::core::{Action, ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb::engine::EngineConfig;
use odlb::metrics::{AppId, ClassId, MetricKind, Sla};
use odlb::sim::SimTime;
use odlb::storage::DomainId;
use odlb::workload::rubis::{rubis_workload, RubisConfig, SEARCH_ITEMS_BY_REGION};
use odlb::workload::tpcw::{bestseller_pattern, tpcw_workload, TpcwConfig, BESTSELLER};
use odlb::workload::{ClientConfig, LoadFunction};

fn tpcw_sim(clients: usize, seed: u64) -> (Simulation, AppId) {
    let mut sim = Simulation::new(SimulationConfig {
        seed,
        ..Default::default()
    });
    let server = sim.add_server(4);
    sim.add_server(4);
    let inst = sim.add_instance(server, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(clients),
    );
    sim.assign_replica(app, inst);
    sim.start();
    (sim, app)
}

#[test]
fn stable_tpcw_meets_sla_and_builds_signatures() {
    let (mut sim, app) = tpcw_sim(20, 11);
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    let mut met = 0;
    for _ in 0..8 {
        let outcome = sim.run_interval();
        controller.on_interval(&mut sim, &outcome);
        if !outcome.sla[&app].is_violation() {
            met += 1;
        }
    }
    assert!(met >= 6, "mostly stable, got {met}/8");
    // All active classes have signatures with MRC parameters.
    let with_mrc = sim
        .workload(app)
        .class_ids()
        .iter()
        .filter(|&&c| {
            controller
                .stable_store()
                .get(
                    odlb::core::memory::instance_key(odlb::cluster::InstanceId(0)),
                    c,
                )
                .is_some_and(|s| s.mrc.is_some())
        })
        .count();
    assert!(with_mrc >= 10, "initial MRCs recorded, got {with_mrc}");
}

#[test]
fn full_simulation_is_deterministic() {
    let run = || {
        let (mut sim, app) = tpcw_sim(25, 99);
        let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
        let mut trace = Vec::new();
        for _ in 0..6 {
            let outcome = sim.run_interval();
            let actions = controller.on_interval(&mut sim, &outcome);
            trace.push((
                outcome.app_latency[&app],
                outcome.app_throughput[&app].to_bits(),
                actions.len(),
            ));
        }
        trace
    };
    assert_eq!(run(), run());
}

#[test]
fn index_drop_triggers_detection_and_memory_action() {
    let (mut sim, app) = tpcw_sim(50, 4_2007);
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    for _ in 0..10 {
        let outcome = sim.run_interval();
        controller.on_interval(&mut sim, &outcome);
    }
    sim.set_class_pattern(app, BESTSELLER, bestseller_pattern(false));
    let bs = ClassId::new(app, BESTSELLER as u32);
    let mut detected_bs = false;
    let mut acted_on_bs = false;
    for _ in 0..8 {
        let outcome = sim.run_interval();
        for action in controller.on_interval(&mut sim, &outcome) {
            match action {
                Action::DetectedOutliers { contexts, .. } if contexts.contains(&bs) => {
                    detected_bs = true;
                }
                Action::SetQuota { class, .. } | Action::PlacedClass { class, .. }
                    if class == bs =>
                {
                    acted_on_bs = true;
                }
                _ => {}
            }
        }
    }
    assert!(detected_bs, "outlier detection must flag BestSeller");
    assert!(acted_on_bs, "controller must quota or re-place BestSeller");
}

#[test]
fn shared_dbms_interference_names_the_right_culprit() {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 77,
        ..Default::default()
    });
    let s0 = sim.add_server(4);
    sim.add_server(4);
    let inst = sim.add_instance(s0, DomainId(1), EngineConfig::default());
    let tpcw = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(45),
    );
    let rubis = sim.add_app(
        rubis_workload(RubisConfig {
            app: AppId(1),
            ..Default::default()
        }),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Step {
            before: 0,
            after: 80,
            at: SimTime::from_secs(80),
        },
    );
    sim.assign_replica(tpcw, inst);
    sim.assign_replica(rubis, inst);
    sim.start();
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    let sibr = ClassId::new(AppId(1), SEARCH_ITEMS_BY_REGION as u32);
    let mut moved = None;
    for _ in 0..22 {
        let outcome = sim.run_interval();
        for action in controller.on_interval(&mut sim, &outcome) {
            if let Action::PlacedClass { class, to, .. } = action {
                if class == sibr {
                    moved = Some(to);
                }
            }
        }
        if moved.is_some() {
            break;
        }
    }
    let target = moved.expect("SearchItemsByRegion must be re-placed");
    assert_ne!(target, inst, "must move off the shared instance");
    assert_eq!(sim.placement_of(AppId(1), sibr), vec![target]);
}

#[test]
fn per_class_accounting_survives_replication_and_writes() {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 5,
        ..Default::default()
    });
    let s1 = sim.add_server(4);
    let s2 = sim.add_server(4);
    let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
    let i2 = sim.add_instance(s2, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(20),
    );
    sim.assign_replica(app, i1);
    sim.assign_replica(app, i2);
    sim.start();
    sim.run_interval();
    let outcome = sim.run_interval();
    // Write classes (e.g. ShoppingCart, template 5) appear on both
    // replicas; their per-interval metrics carry real page traffic.
    let write_class = ClassId::new(app, 5);
    for inst in [i1, i2] {
        let v = outcome.reports[&inst]
            .per_class
            .get(&write_class)
            .expect("write class on every replica");
        assert!(v[MetricKind::PageAccesses] > 0.0);
        assert!(v[MetricKind::Throughput] > 0.0);
    }
}
