//! Parallel-run parity: `--jobs N` must be byte-identical to `--jobs 1`.
//!
//! The experiments suite promises that parallelism lives entirely
//! *between* isolated simulations, never inside one, so running figures
//! concurrently changes nothing observable: stdout blocks, run-digest
//! lines, `.prom`/`.csv` snapshots, and trace JSONL files all come out
//! byte for byte the same. This test drives the suite library (the same
//! registry the binary runs) over a two-figure subset — one plain figure
//! and one traced + instrumented figure — once sequentially and once on
//! four workers, with identical artifact paths, and compares everything.
//! (Commit ordering under adversarial job durations is unit-tested in
//! `odlb_bench::runner`.)

use odlb_bench::suite::{run_suite, FigureOutput, SuiteConfig};
use std::path::PathBuf;

/// fig5 (plain MRC figure) + fig3-mini (traced, instrumented, CI-scale)
/// cover both job shapes while keeping the test fast.
const SELECTION: [&str; 2] = ["fig5", "fig3-mini"];

fn run_with_jobs(jobs: usize) -> Vec<FigureOutput> {
    let cfg = SuiteConfig {
        jobs,
        // Identical (relative) artifact paths for both runs so the
        // "metrics: wrote …" stdout lines match byte for byte; payloads
        // are compared in memory, then round-tripped through disk below.
        trace_path: Some("parity-trace.jsonl".to_string()),
        metrics_dir: Some("parity-metrics".to_string()),
        capture_exposition: false,
        profile: true,
    };
    let mut outputs = Vec::new();
    run_suite(&SELECTION, &cfg, |out| outputs.push(out));
    outputs
}

#[test]
fn four_workers_match_sequential_byte_for_byte() {
    let sequential = run_with_jobs(1);
    let parallel = run_with_jobs(4);

    assert_eq!(sequential.len(), SELECTION.len());
    assert_eq!(parallel.len(), SELECTION.len());

    for (seq, par) in sequential.iter().zip(&parallel) {
        // Commit order is the canonical selection order in both runs.
        assert_eq!(seq.name, par.name);
        assert_eq!(seq.stdout, par.stdout, "stdout block of {}", seq.name);

        // Every digest line (embedded in the block) matches exactly.
        let digest_line = |o: &FigureOutput| {
            o.stdout
                .lines()
                .find(|l| l.contains("run digest:"))
                .map(str::to_string)
        };
        assert_eq!(digest_line(seq), digest_line(par), "digest of {}", seq.name);

        // Artifact payloads — trace JSONL, .prom, .csv — byte-identical,
        // destined for identical paths.
        assert_eq!(
            seq.files.len(),
            par.files.len(),
            "artifact count of {}",
            seq.name
        );
        for ((seq_path, seq_bytes), (par_path, par_bytes)) in seq.files.iter().zip(&par.files) {
            assert_eq!(seq_path, par_path);
            assert_eq!(seq_bytes, par_bytes, "payload of {}", seq_path.display());
        }
    }

    // The sim-unit folded profile dump — merged across figures exactly
    // as the binary does — is also byte-identical, and valid.
    let merge = |outputs: &[FigureOutput]| {
        let mut merged = odlb_telemetry::SpanProfiler::new();
        for out in outputs {
            if let Some(profile) = &out.profile {
                merged.merge(profile);
            }
        }
        merged.folded_sim()
    };
    let seq_folded = merge(&sequential);
    let par_folded = merge(&parallel);
    assert_eq!(seq_folded, par_folded, "sim folded dump differs by jobs");
    let stats = odlb_telemetry::validate_folded(&seq_folded).expect("valid folded dump");
    assert!(
        stats.max_depth >= 4,
        "expected nested stacks, got depth {}",
        stats.max_depth
    );

    // The traced figure actually produced artifacts (the comparison
    // above must not pass vacuously).
    let traced = &sequential[1];
    assert_eq!(traced.name, "fig3-mini");
    assert_eq!(traced.files.len(), 3, "trace + .prom + .csv");
    assert!(traced.files.iter().all(|(_, bytes)| !bytes.is_empty()));

    // Round-trip through temp dirs, as the binary would write them, and
    // re-compare on disk.
    let base = std::env::temp_dir().join(format!("odlb-parity-{}", std::process::id()));
    let seq_dir = base.join("seq");
    let par_dir = base.join("par");
    for (dir, outputs) in [(&seq_dir, &sequential), (&par_dir, &parallel)] {
        for out in outputs.iter() {
            for (path, bytes) in &out.files {
                let dest = dir.join(path);
                std::fs::create_dir_all(dest.parent().expect("artifact paths have parents"))
                    .expect("create temp artifact dir");
                std::fs::write(&dest, bytes).expect("write temp artifact");
            }
        }
    }
    let mut rel_paths: Vec<PathBuf> = sequential
        .iter()
        .flat_map(|o| o.files.iter().map(|(p, _)| p.clone()))
        .collect();
    rel_paths.sort();
    for rel in rel_paths {
        let a = std::fs::read(seq_dir.join(&rel)).expect("read sequential artifact");
        let b = std::fs::read(par_dir.join(&rel)).expect("read parallel artifact");
        assert_eq!(a, b, "on-disk artifact {}", rel.display());
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn multi_figure_trace_paths_are_suffixed_per_figure() {
    let outputs = run_with_jobs(2);
    let trace_paths: Vec<String> = outputs
        .iter()
        .flat_map(|o| o.files.iter().map(|(p, _)| p.display().to_string()))
        .filter(|p| p.contains("parity-trace"))
        .collect();
    // Only the traced figure writes a trace, suffixed with its name
    // because the selection has more than one figure.
    assert_eq!(trace_paths, vec!["parity-trace.jsonl.fig3-mini"]);
}
