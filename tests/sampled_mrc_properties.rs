//! Differential property tests for the SHARDS-style sampled MRC tracker.
//!
//! The sampled tracker trades exactness for speed; these tests pin the
//! trade precisely:
//!
//! * the sampled curve's mean absolute miss-ratio error against the
//!   exact Mattson curve stays under a per-rate bound across every
//!   workload family the testkit generates;
//! * the sampled curve keeps the structural MRC invariants (monotone
//!   non-increasing miss ratio);
//! * the whole pipeline is deterministic: same seed, same curve bytes;
//! * and — the controller-facing contract — driving the fig. 5
//!   BestSeller experiment at `Sampled { rate: 0.1 }` yields the *same
//!   controller actions* as exact mode, with byte-identical run digests
//!   when exact mode is replayed.

use std::cell::Cell;

use odlb::mrc::{
    compute_curve, fit_quotas, MissRatioCurve, MrcMode, MrcParams, QuotaRequest, SampledTracker,
};
use odlb::sim::SimRng;
use odlb::trace::{ActionKind, DigestSink, RingBufferSink, TraceEvent, Tracer};
use odlb::workload::tpcw::{tpcw_workload, TpcwConfig, BESTSELLER};
use odlb_testkit::trace::{check_traces, TraceFamily};
use odlb_testkit::{check, Gen};

/// Pool size used throughout (the fig. 5 configuration).
const CAP: usize = 8192;

/// Mean absolute miss-ratio difference over a uniform memory-size grid.
fn mean_abs_error(exact: &MissRatioCurve, sampled: &MissRatioCurve) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u32;
    let mut m = 1;
    while m <= CAP {
        sum += (exact.miss_ratio(m) - sampled.miss_ratio(m)).abs();
        n += 1;
        m += 128;
    }
    sum / n as f64
}

/// Draws a family sized so the filter keeps a meaningful key population
/// (SHARDS' error guarantee is statistical: at rate R it needs on the
/// order of tens of sampled keys, i.e. `keys ≳ 64/R`).
fn family_with_min_keys(g: &mut Gen, min_keys: u64) -> TraceFamily {
    match g.weighted(&[3.0, 1.0, 1.0, 2.0]) {
        0 => TraceFamily::Zipf {
            keys: g.u64_in(min_keys, 8192),
            exponent: g.f64_in(0.6, 1.2),
        },
        1 => TraceFamily::SequentialScan {
            keys: g.u64_in(min_keys.max(2048), 8192),
        },
        2 => TraceFamily::Loop {
            keys: g.u64_in(min_keys, 4096),
        },
        _ => TraceFamily::PhaseShift {
            keys: g.u64_in(min_keys, 2048),
            phase_len: g.usize_in(200, 800),
        },
    }
}

/// Sampled-vs-exact mean absolute MRC error stays under a per-rate
/// bound on every generated workload family. The bounds were measured
/// empirically over the deterministic case streams (worst observed:
/// 0.059 at R=0.5, 0.119 at R=0.2, 0.094 at R=0.1) and carry ~2x
/// headroom; they double as a regression fence — an estimator change
/// that degrades accuracy trips them.
#[test]
fn sampled_error_is_bounded_across_families_and_rates() {
    for (rate, bound) in [(0.5, 0.12), (0.2, 0.24), (0.1, 0.20)] {
        let worst = Cell::new(0.0f64);
        let name = format!("sampled_error_r{rate}");
        check(&name, 32, |g| {
            let min_keys = (64.0 / rate) as u64;
            let family = family_with_min_keys(g, min_keys);
            let trace = family.generate(g, 4000);
            let exact = compute_curve(MrcMode::Exact, CAP, trace.iter().copied());
            let sampled = compute_curve(MrcMode::Sampled { rate }, CAP, trace.iter().copied());
            let mae = mean_abs_error(&exact, &sampled);
            worst.set(worst.get().max(mae));
            assert!(
                mae <= bound,
                "family {} rate {rate}: MAE {mae:.4} > bound {bound}",
                family.label()
            );
        });
        eprintln!("rate {rate}: worst MAE {:.4} (bound {bound})", worst.get());
    }
}

/// The sampled curve is a genuine MRC: miss ratio is monotone
/// non-increasing in memory, whatever the trace and rate.
#[test]
fn sampled_curve_is_monotone() {
    check_traces("sampled_curve_is_monotone", 96, 2000, |trace| {
        let rates = [0.5, 0.2, 0.1, 0.05];
        let rate = rates[trace.len() % rates.len()];
        let mut tracker = SampledTracker::new(CAP, rate);
        for &k in trace {
            tracker.access(k);
        }
        let curve = tracker.curve();
        let mut prev = 1.0 + 1e-12;
        for m in (1..=CAP).step_by(97) {
            let mr = curve.miss_ratio(m);
            assert!(mr <= prev + 1e-12, "rate {rate}: MR({m}) = {mr} > {prev}");
            assert!((0.0..=1.0).contains(&mr));
            prev = mr;
        }
    });
}

/// Same seed ⇒ identical curve bytes, both through the tracker and
/// through the `compute_curve` dispatch the controller uses.
#[test]
fn sampled_curve_is_deterministic() {
    check_traces("sampled_curve_is_deterministic", 64, 2000, |trace| {
        let run = || {
            let mut tracker = SampledTracker::new(CAP, 0.1);
            for &k in trace {
                tracker.access(k);
            }
            format!("{:?}", tracker.into_curve())
        };
        let first = run();
        assert_eq!(first, run(), "two replays must agree byte-for-byte");
        let dispatched = format!(
            "{:?}",
            compute_curve(MrcMode::Sampled { rate: 0.1 }, CAP, trace.iter().copied())
        );
        assert_eq!(first, dispatched, "dispatch must match the tracker");
    });
}

// ---------------------------------------------------------------------
// Controller-decision parity on fig. 5 (ISSUE satellite 3).
// ---------------------------------------------------------------------

/// The fig. 5 reference trace: 120 BestSeller executions, seed 2007 —
/// byte-identical to `odlb_bench::experiments::fig5::run(120)`.
fn fig5_trace() -> Vec<odlb::storage::PageId> {
    let workload = tpcw_workload(TpcwConfig::default());
    let mut rng = SimRng::new(2007);
    let mut pages = Vec::new();
    for _ in 0..120 {
        pages.extend(workload.query_of_class(BESTSELLER, &mut rng).pages);
    }
    pages
}

/// The controller's quota floor (`ControllerConfig::min_quota_pages`):
/// quotas are meaningful at this granularity, so decision parity is
/// defined over quota *units*, not raw pages.
const MIN_QUOTA_PAGES: usize = 512;

/// Replays the fig. 5 diagnosis under `mode` and emits the resulting
/// controller actions through a digesting tracer: the problem-class
/// verdict and the quota the real `fit_quotas` solver grants, rounded
/// up to whole quota units. Returns the run digest and the event bytes.
fn fig5_controller_actions(mode: MrcMode) -> (u64, String, MrcParams) {
    let trace = fig5_trace();
    let curve = compute_curve(mode, CAP, trace.iter().copied());
    let params = curve.params(CAP, 0.05);

    // Stable reference: the class used to be far cheaper (the fig. 4
    // index-drop narrative), so diagnosis must flag it as changed.
    let stable = MrcParams {
        total_memory_needed: 3000,
        ideal_miss_ratio: 0.01,
        acceptable_memory_needed: 2500,
        acceptable_miss_ratio: 0.03,
    };
    let changed = params.significantly_different_from(&stable, 0.25, 0.10);

    let requests = [QuotaRequest {
        id: BESTSELLER as u64,
        curve: &curve,
        acceptable_pages: params.acceptable_memory_needed,
        access_rate: 1.0,
    }];
    let budget = CAP - 1;
    let granted = fit_quotas(budget, &requests).expect("fig5 fits its own pool")[0].pages;
    let quota_units = granted.div_ceil(MIN_QUOTA_PAGES);

    let tracer = Tracer::new();
    let digest = tracer.attach(DigestSink::new());
    let ring = tracer.attach(RingBufferSink::new(16));
    tracer.emit(TraceEvent::ActionApplied {
        end_us: 0,
        kind: ActionKind::SetQuota,
        app: Some(0),
        instance: Some(0),
        template: Some(BESTSELLER as u32),
        pages: Some((quota_units * MIN_QUOTA_PAGES) as u64),
        detail: format!("changed={changed} quota_units={quota_units}"),
    });
    let bytes = ring
        .borrow()
        .events()
        .iter()
        .map(|e| e.to_json())
        .collect::<Vec<_>>()
        .join("\n");
    let d = digest.borrow().digest();
    (d, bytes, params)
}

/// Exact mode replayed twice is byte-identical, and `Sampled { 0.1 }`
/// reaches the *same controller actions* (same digest over the action
/// stream) even though its curve is an estimate.
#[test]
fn fig5_sampled_controller_actions_match_exact() {
    let (exact_digest, exact_bytes, exact_params) = fig5_controller_actions(MrcMode::Exact);
    let (replay_digest, replay_bytes, _) = fig5_controller_actions(MrcMode::Exact);
    assert_eq!(exact_bytes, replay_bytes, "exact action stream drifted");
    assert_eq!(exact_digest, replay_digest, "exact run digest drifted");

    let (sampled_digest, sampled_bytes, sampled_params) =
        fig5_controller_actions(MrcMode::Sampled { rate: 0.1 });
    assert_eq!(
        exact_bytes, sampled_bytes,
        "sampling changed a controller action:\nexact   {exact_bytes}\nsampled {sampled_bytes}"
    );
    assert_eq!(exact_digest, sampled_digest, "action digests diverged");

    // The parity is not bucketing luck: the sampled estimate lands
    // within 5% of the exact acceptable memory (paper-scale: 6976
    // exact vs 6850 sampled at R = 0.1).
    let exact_acc = exact_params.acceptable_memory_needed as f64;
    let sampled_acc = sampled_params.acceptable_memory_needed as f64;
    assert!(
        (exact_acc - sampled_acc).abs() / exact_acc < 0.05,
        "acceptable memory drifted: exact {exact_acc} vs sampled {sampled_acc}"
    );
}
