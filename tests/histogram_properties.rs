//! Property tests for the telemetry histogram: the quantile estimate must
//! stay within the advertised relative rank error of the exact
//! nearest-rank answer, and merge must conserve counts, commute and
//! associate — the invariants that make per-class × per-replica series
//! aggregatable across instances.

use odlb::telemetry::LogLinearHistogram;
use odlb_testkit::{check, Gen};

/// A latency-like sample: mixture of exact small values, mid-range and a
/// heavy tail spanning many octaves.
fn sample(g: &mut Gen) -> u64 {
    match g.weighted(&[2.0, 3.0, 1.0]) {
        0 => g.u64_in(0, 127),
        1 => g.u64_in(128, 100_000),
        _ => g.u64_in(100_000, 10_000_000_000),
    }
}

fn samples(g: &mut Gen) -> Vec<u64> {
    g.vec_of(1, 800, sample)
}

/// Exact nearest-rank quantile by full sort, the reference the histogram's
/// error bound is stated against.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Everything an exporter or quantile query can observe about a
/// histogram: count, sum, extrema, cumulative buckets.
type Fingerprint = (u64, u64, Option<u64>, Option<u64>, Vec<(u64, u64)>);

/// Fingerprint for histogram equality: merge order must not be visible in
/// anything an exporter or quantile query can observe.
fn fingerprint(h: &LogLinearHistogram) -> Fingerprint {
    (h.count(), h.sum(), h.min(), h.max(), h.cumulative_buckets())
}

#[test]
fn quantile_within_advertised_error_of_exact_sort() {
    check("quantile_within_advertised_error_of_exact_sort", 128, |g| {
        let values = samples(g);
        let mut h = LogLinearHistogram::default();
        for &v in &values {
            h.record(v);
        }
        let err = h.relative_error();
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let est = h.quantile(q).expect("non-empty");
            assert!(
                est >= exact,
                "estimate must never undershoot: q={q} est={est} exact={exact}"
            );
            assert!(
                est as f64 <= exact as f64 * (1.0 + err),
                "estimate beyond advertised error: q={q} est={est} exact={exact} err={err}"
            );
        }
        // The extrema are exact, not merely within the bound.
        assert_eq!(h.quantile(0.0), Some(*values.iter().min().unwrap()));
        assert_eq!(h.quantile(1.0), Some(*values.iter().max().unwrap()));
    });
}

#[test]
fn merge_conserves_counts_and_sums() {
    check("merge_conserves_counts_and_sums", 128, |g| {
        let a_vals = samples(g);
        let b_vals = samples(g);
        let mut a = LogLinearHistogram::default();
        let mut b = LogLinearHistogram::default();
        for &v in &a_vals {
            a.record(v);
        }
        for &v in &b_vals {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum() + b.sum());
        let total: u64 = merged.cumulative_buckets().last().map(|&(_, c)| c).unwrap();
        assert_eq!(total, merged.count(), "buckets must sum to the count");
        // Merging is equivalent to recording both streams into one.
        let mut direct = LogLinearHistogram::default();
        for &v in a_vals.iter().chain(&b_vals) {
            direct.record(v);
        }
        assert_eq!(fingerprint(&merged), fingerprint(&direct));
    });
}

#[test]
fn merge_commutes_and_associates() {
    check("merge_commutes_and_associates", 128, |g| {
        let mut parts = Vec::new();
        for _ in 0..3 {
            let mut h = LogLinearHistogram::default();
            for &v in &samples(g) {
                h.record(v);
            }
            parts.push(h);
        }
        let [a, b, c] = &parts[..] else {
            unreachable!()
        };
        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(b);
        let mut ba = b.clone();
        ba.merge(a);
        assert_eq!(fingerprint(&ab), fingerprint(&ba), "merge must commute");
        // (a + b) + c == a + (b + c)
        let mut ab_c = ab.clone();
        ab_c.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(
            fingerprint(&ab_c),
            fingerprint(&a_bc),
            "merge must associate"
        );
    });
}

#[test]
fn record_n_matches_repeated_record() {
    check("record_n_matches_repeated_record", 64, |g| {
        let v = sample(g);
        let n = g.u64_in(1, 50);
        let mut bulk = LogLinearHistogram::default();
        bulk.record_n(v, n);
        let mut one_by_one = LogLinearHistogram::default();
        for _ in 0..n {
            one_by_one.record(v);
        }
        assert_eq!(fingerprint(&bulk), fingerprint(&one_by_one));
    });
}
