//! The paper's §7 future-work scenario, end to end: a write hotspot
//! serialises one query class; the per-class lock-wait metric flows
//! through the same stable-state / outlier pipeline, and the controller
//! surfaces a lock-contention diagnosis (not a bogus memory action).

use odlb::cluster::{Simulation, SimulationConfig};
use odlb::core::{Action, ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb::engine::{DbEngine, EngineConfig, LockManager};
use odlb::metrics::{AppId, MetricKind, Sla};
use odlb::sim::{SimDuration, SimRng, SimTime, Station};
use odlb::storage::{DiskModel, DomainId, SharedIoPath};
use odlb::workload::synthetic::hotspot_write_workload;
use odlb::workload::{ClientConfig, LoadFunction};

/// Engine-level: two writers to the same page serialise; readers do not.
#[test]
fn writers_serialize_on_the_hot_page() {
    let workload = hotspot_write_workload(AppId(0), 20);
    let idx = workload.class_index_by_name("CounterUpdate").unwrap();
    let mut rng = SimRng::new(3);
    let mut engine = DbEngine::new(EngineConfig::default(), SimTime::ZERO);
    let mut cpu = Station::new(8);
    let mut io = SharedIoPath::new(DiskModel::default());

    // Warm the pages so latency is lock/CPU only.
    let warm = workload.query_of_class(idx, &mut rng);
    let r = engine.execute(SimTime::ZERO, &warm, &mut cpu, &mut io, DomainId(1));
    let t0 = r.completion;

    // Two concurrent counter updates: the second must wait ~the first's
    // execution time.
    let q1 = workload.query_of_class(idx, &mut rng);
    let q2 = workload.query_of_class(idx, &mut rng);
    let r1 = engine.execute(t0, &q1, &mut cpu, &mut io, DomainId(1));
    let r2 = engine.execute(t0, &q2, &mut cpu, &mut io, DomainId(1));
    assert_eq!(r1.record.lock_wait, SimDuration::ZERO);
    assert!(
        r2.record.lock_wait >= SimDuration::from_millis(15),
        "second writer waits for the first: {}",
        r2.record.lock_wait
    );
    assert!(r2.record.latency > r1.record.latency);
    assert!(engine.locks().contention_rate() > 0.0);
}

/// Cluster-level: raising the hotspot write cost after stable state makes
/// the controller name the contended class.
#[test]
fn controller_diagnoses_lock_contention() {
    let mut sim = Simulation::new(SimulationConfig {
        seed: 60,
        ..Default::default()
    });
    let server = sim.add_server(8);
    let inst = sim.add_instance(server, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        hotspot_write_workload(AppId(0), 3),
        Sla::new(SimDuration::from_millis(10)),
        ClientConfig {
            think_time_mean: SimDuration::from_millis(200),
            load_noise: 0.0,
        },
        LoadFunction::Constant(25),
    );
    sim.assign_replica(app, inst);
    sim.start();
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());

    // Reach stable state.
    for _ in 0..8 {
        let outcome = sim.run_interval();
        controller.on_interval(&mut sim, &outcome);
    }

    // Inject the anomaly: the counter update becomes 15x slower (a bad
    // plan, an added trigger, …) — writers pile up on the one page.
    let idx = sim
        .workload(app)
        .class_index_by_name("CounterUpdate")
        .unwrap();
    let mut slow = sim.workload(app).classes[idx].clone();
    slow.cpu_base = SimDuration::from_millis(45);
    sim.set_class_pattern(app, idx, slow.pattern.clone());
    // set_class_pattern keeps cpu; bump CPU via a dedicated knob:
    sim.set_class_cpu(app, idx, SimDuration::from_millis(45), slow.cpu_per_page);

    let counter = odlb::metrics::ClassId::new(app, idx as u32);
    let mut diagnosed = None;
    let mut bogus_memory_actions = 0;
    for _ in 0..8 {
        let outcome = sim.run_interval();
        // The lock-wait metric itself must register the pile-up.
        if let Some(report) = outcome.reports.get(&inst) {
            if let Some(v) = report.per_class.get(&counter) {
                if v[MetricKind::LockWaits] > 0.0 {
                    // at least some waiting observed
                }
            }
        }
        for action in controller.on_interval(&mut sim, &outcome) {
            match action {
                Action::DetectedLockContention { class, ratio, .. } => {
                    diagnosed = Some((class, ratio));
                }
                Action::SetQuota { .. } | Action::PlacedClass { .. } => {
                    bogus_memory_actions += 1;
                }
                _ => {}
            }
        }
        if diagnosed.is_some() {
            break;
        }
    }
    let (class, ratio) = diagnosed.expect("lock contention must be diagnosed");
    assert_eq!(class, counter, "the counter update is the culprit");
    assert!(ratio > 1.1, "wait ratio {ratio}");
    assert_eq!(
        bogus_memory_actions, 0,
        "a lock anomaly must not trigger memory actions"
    );
}

/// The lock manager itself under concurrent mixed traffic: waits only on
/// genuine conflicts.
#[test]
fn reads_never_wait() {
    let workload = hotspot_write_workload(AppId(0), 10);
    let read_idx = workload.class_index_by_name("Read").unwrap();
    let mut rng = SimRng::new(8);
    let mut engine = DbEngine::new(EngineConfig::default(), SimTime::ZERO);
    let mut cpu = Station::new(8);
    let mut io = SharedIoPath::new(DiskModel::default());
    let mut lm = LockManager::new();
    lm.acquire(
        SimTime::ZERO,
        &[odlb::storage::PageId::new(odlb::storage::SpaceId(80), 0)],
        SimDuration::from_secs(100),
    );
    // Reads through the engine while a writer would hold the page.
    for _ in 0..20 {
        let q = workload.query_of_class(read_idx, &mut rng);
        let r = engine.execute(SimTime::ZERO, &q, &mut cpu, &mut io, DomainId(1));
        assert_eq!(
            r.record.lock_wait,
            SimDuration::ZERO,
            "MVCC reads don't lock"
        );
    }
}
