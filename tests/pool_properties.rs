//! Property tests for the partitioned buffer pool: the capacity invariant
//! must hold under arbitrary interleavings of quota grants, clears,
//! accesses and prefetches, and accounting must always reconcile.

use odlb::bufferpool::{PartitionedPool, QuotaError};
use odlb::metrics::{AppId, ClassId};
use odlb::storage::{PageId, SpaceId};
use odlb_testkit::{check, Gen};

#[derive(Clone, Debug)]
enum Op {
    Access { class: u32, page: u64 },
    Prefetch { class: u32, start: u64, len: u64 },
    SetQuota { class: u32, pages: usize },
    ClearQuota { class: u32 },
}

fn ops(g: &mut Gen) -> Vec<Op> {
    g.vec_of(1, 400, |g| match g.weighted(&[6.0, 2.0, 1.0, 1.0]) {
        0 => Op::Access {
            class: g.u32_in(0, 6),
            page: g.u64_in(0, 2_000),
        },
        1 => Op::Prefetch {
            class: g.u32_in(0, 6),
            start: g.u64_in(0, 2_000),
            len: g.u64_in(1, 64),
        },
        2 => Op::SetQuota {
            class: g.u32_in(0, 6),
            pages: g.usize_in(1, 600),
        },
        _ => Op::ClearQuota {
            class: g.u32_in(0, 6),
        },
    })
}

fn apply(pool: &mut PartitionedPool, op: &Op) {
    let cid = |t: u32| ClassId::new(AppId(0), t);
    match *op {
        Op::Access { class, page } => {
            pool.access(cid(class), PageId::new(SpaceId(0), page));
        }
        Op::Prefetch { class, start, len } => {
            pool.prefetch(
                cid(class),
                (start..start + len).map(|p| PageId::new(SpaceId(0), p)),
            );
        }
        Op::SetQuota { class, pages } => match pool.set_quota(cid(class), pages) {
            Ok(())
            | Err(QuotaError::AlreadyQuotaed)
            | Err(QuotaError::InsufficientGeneral { .. })
            | Err(QuotaError::ZeroQuota) => {}
        },
        Op::ClearQuota { class } => {
            pool.clear_quota(cid(class));
        }
    }
}

#[test]
fn capacity_invariant_under_arbitrary_ops() {
    check("capacity_invariant_under_arbitrary_ops", 256, |g| {
        let mut pool = PartitionedPool::new(1024);
        for op in ops(g) {
            apply(&mut pool, &op);
            assert!(pool.capacity_invariant_holds());
            assert_eq!(pool.total_pages(), 1024);
            assert!(
                pool.general_pages() >= 1,
                "general partition never vanishes"
            );
        }
    });
}

fn counters_reconcile_on(ops: &[Op]) {
    let mut pool = PartitionedPool::new(512);
    let cid = |t: u32| ClassId::new(AppId(0), t);
    let mut expected_accesses = [0u64; 6];
    for op in ops {
        match *op {
            Op::Access { class, page } => {
                pool.access(cid(class), PageId::new(SpaceId(0), page));
                expected_accesses[class as usize] += 1;
            }
            Op::SetQuota { class, pages } => {
                // A new quota creates a fresh partition: its counters
                // restart. Track that by resetting expectations.
                if pool.set_quota(cid(class), pages).is_ok() {
                    expected_accesses[class as usize] = 0;
                }
            }
            Op::ClearQuota { class } => {
                if pool.clear_quota(cid(class)) {
                    expected_accesses[class as usize] = 0;
                }
            }
            Op::Prefetch { .. } => {}
        }
    }
    for t in 0..6u32 {
        let c = pool.class_counters(cid(t));
        assert_eq!(
            c.accesses, expected_accesses[t as usize],
            "class {t} accesses"
        );
        assert_eq!(c.hits + c.misses, c.accesses, "hits+misses=accesses");
    }
}

#[test]
fn counters_reconcile() {
    check("counters_reconcile", 256, |g| {
        counters_reconcile_on(&ops(g))
    });
}

/// The shrunk counterexample proptest once found for `counters_reconcile`
/// (a cleared quota must also reset the counter expectation), preserved
/// as an explicit regression case.
#[test]
fn counters_reconcile_regression_clear_after_quota() {
    counters_reconcile_on(&[
        Op::Access { class: 1, page: 0 },
        Op::SetQuota { class: 1, pages: 1 },
        Op::ClearQuota { class: 1 },
    ]);
}

/// A class with a quota can never consume more distinct resident
/// pages than its quota.
#[test]
fn quota_bounds_residency() {
    check("quota_bounds_residency", 256, |g| {
        let pages = g.vec_of(1, 500, |g| g.u64_in(0, 10_000));
        let mut pool = PartitionedPool::new(1024);
        let class = ClassId::new(AppId(0), 8);
        pool.set_quota(class, 64).unwrap();
        for &p in &pages {
            pool.access(class, PageId::new(SpaceId(0), p));
        }
        // Re-touch the last 64 distinct pages: at most 64 can hit, and
        // anything beyond the quota must have been evicted.
        let mut distinct: Vec<u64> = Vec::new();
        for &p in pages.iter().rev() {
            if !distinct.contains(&p) {
                distinct.push(p);
            }
        }
        if distinct.len() > 64 {
            let victim = distinct[distinct.len() - 1];
            // The oldest distinct page cannot still be resident unless it
            // was re-touched into the recent 64.
            let recent: Vec<u64> = distinct.iter().take(64).copied().collect();
            if !recent.contains(&victim) {
                let before = pool.class_counters(class).misses;
                pool.access(class, PageId::new(SpaceId(0), victim));
                let after = pool.class_counters(class).misses;
                assert_eq!(after, before + 1, "evicted page must miss");
            }
        }
    });
}
