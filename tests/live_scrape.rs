//! End-to-end tests for the live observability plane: a run with a
//! scrape endpoint attached serves the current exposition over a real
//! socket, and serving is strictly observation-side — artifacts and
//! decision-trace digests stay byte-identical with or without it.

use odlb::telemetry::{validate_prometheus, MetricsServer, SpanProfiler, Telemetry};
use odlb::trace::{DigestSink, Tracer};
use odlb_bench::experiments::fig3;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::rc::Rc;

/// One HTTP GET against the endpoint; returns (status line, body).
fn scrape(port: u16, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("split response");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// The scaled-down fig3 run the determinism tests use, with an optional
/// live endpoint attached the same way `experiments --serve` wires it.
fn run(server: Option<Rc<MetricsServer>>) -> (String, String, u64) {
    let tracer = Tracer::new();
    let digest = tracer.attach(DigestSink::new());
    let mut telemetry = Telemetry::attached();
    if let Some(server) = server {
        telemetry = telemetry.with_server(server);
    }
    fig3::run_instrumented(
        tracer,
        telemetry.clone(),
        Some(SpanProfiler::shared()),
        12,
        4,
        20,
        150,
        2,
    );
    let prom = telemetry.render_prometheus().expect("attached");
    let csv = telemetry.render_csv().expect("attached");
    let d = digest.borrow().digest();
    (prom, csv, d)
}

#[test]
fn live_endpoint_serves_the_current_exposition() {
    let server = Rc::new(MetricsServer::bind(0).expect("bind ephemeral"));
    let port = server.port();
    let (prom, _, _) = run(Some(server.clone()));

    let (status, body) = scrape(port, "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    // The served copy is the exposition published at the last interval
    // snapshot — the same thing `render_prometheus` returns after the run.
    assert_eq!(body, prom);
    let stats = validate_prometheus(&body).expect("served exposition must validate");
    assert!(stats.families > 0, "served exposition must not be empty");
    assert!(body.contains("odlb_app_throughput_qps"));
    assert!(
        body.contains("odlb_cluster_query_latency_us_count"),
        "cluster-wide merged histogram missing from live exposition"
    );
    assert!(server.scrape_count() >= 1);

    let (status, _) = scrape(port, "/other");
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");
}

#[test]
fn serving_leaves_artifacts_and_digests_identical() {
    let (prom_plain, csv_plain, digest_plain) = run(None);
    let server = Rc::new(MetricsServer::bind(0).expect("bind"));
    // Scrape traffic racing the run must not perturb it either: hit the
    // endpoint once mid-setup before the run even starts.
    let _ = scrape(server.port(), "/metrics");
    let (prom_served, csv_served, digest_served) = run(Some(server));

    assert_eq!(digest_plain, digest_served, "serving changed the digest");
    assert_eq!(
        prom_plain, prom_served,
        "serving changed the .prom artifact"
    );
    assert_eq!(csv_plain, csv_served, "serving changed the .csv artifact");
}
