//! Property tests for the sweep jobserver (`odlb_bench::sweep`): the
//! resumability and determinism guarantees the ISSUE pins.
//!
//! 1. **Interrupt/resume** — a sweep stopped after `K` committed cells
//!    (`max_cells: K`, which leaves exactly the on-disk state of a real
//!    interrupt, since commits happen in canonical order) resumes by
//!    skipping exactly `K` cells, and the merged `sweep.csv` +
//!    `summary.txt` (which embeds every cell digest) are byte-identical
//!    to an uninterrupted run.
//! 2. **Memoization parity** — a memoized sweep (shared schedules) and a
//!    cold sweep (per-cell generation) produce byte-identical artifacts:
//!    caching may only move work, never change results.
//! 3. **Job-count parity** — `jobs = 1` and `jobs = 4` produce
//!    byte-identical artifacts *and* cell logs from the same starting
//!    state.
//!
//! Matrices come from `odlb_testkit::matrix::arbitrary_matrix`, so axis
//! shapes, key order, quoting and comments vary per case while the cell
//! arithmetic stays exact.

use odlb_bench::sweep::{parse_matrix, run_sweep, MatrixSpec, SweepOptions, SweepOutcome};
use odlb_testkit::matrix::arbitrary_matrix;
use odlb_testkit::{check, Gen};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique scratch directory per call, cleaned by each test's epilogue.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "odlb-sweep-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn sweep(
    spec: &MatrixSpec,
    dir: &Path,
    jobs: usize,
    memo: bool,
    max: Option<usize>,
) -> SweepOutcome {
    run_sweep(
        spec,
        &SweepOptions {
            jobs,
            out_dir: dir.to_path_buf(),
            memo,
            max_cells: max,
        },
    )
    .expect("sweep runs")
}

fn merged_bytes(dir: &Path) -> (String, String) {
    (
        std::fs::read_to_string(dir.join("sweep.csv")).expect("sweep.csv"),
        std::fs::read_to_string(dir.join("summary.txt")).expect("summary.txt"),
    )
}

#[test]
fn interrupted_sweep_resumes_and_reproduces_merged_artifacts() {
    check("sweep_interrupt_resume", 5, |g: &mut Gen| {
        let m = arbitrary_matrix(g);
        let spec = parse_matrix(&m.toml).expect("generated matrix parses");
        let clean_dir = scratch("clean");
        let resumed_dir = scratch("resumed");

        let clean = sweep(&spec, &clean_dir, 2, true, None);
        assert_eq!(clean.total_cells, m.expected_cells);
        assert_eq!(clean.ran, m.expected_cells);
        assert!(!clean.interrupted);

        // Interrupt after K committed cells: canonical commit order means
        // max_cells K leaves exactly the state of a killed sweep.
        let k = g.usize_in(1, m.expected_cells + 1);
        let first = sweep(&spec, &resumed_dir, 2, true, Some(k));
        assert_eq!(first.ran, k.min(m.expected_cells));
        assert_eq!(first.interrupted, k < m.expected_cells);

        let resumed = sweep(&spec, &resumed_dir, 2, true, None);
        assert_eq!(
            resumed.skipped,
            k.min(m.expected_cells),
            "resume must skip every committed cell"
        );
        assert_eq!(resumed.ran, m.expected_cells - resumed.skipped);
        assert!(!resumed.interrupted);
        assert_eq!(resumed.events, clean.events);

        let (clean_csv, clean_sum) = merged_bytes(&clean_dir);
        let (res_csv, res_sum) = merged_bytes(&resumed_dir);
        assert_eq!(
            clean_csv, res_csv,
            "resumed sweep.csv must match clean run byte-for-byte"
        );
        assert_eq!(
            clean_sum, res_sum,
            "resumed summary (incl. digests) must match clean run"
        );

        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&resumed_dir);
    });
}

#[test]
fn memoized_and_cold_sweeps_are_byte_identical() {
    check("sweep_memo_parity", 4, |g: &mut Gen| {
        let m = arbitrary_matrix(g);
        let spec = parse_matrix(&m.toml).expect("generated matrix parses");
        let memo_dir = scratch("memo");
        let cold_dir = scratch("cold");

        let memo = sweep(&spec, &memo_dir, 2, true, None);
        let cold = sweep(&spec, &cold_dir, 2, false, None);
        assert_eq!(memo.events, cold.events);

        let (memo_csv, memo_sum) = merged_bytes(&memo_dir);
        let (cold_csv, cold_sum) = merged_bytes(&cold_dir);
        assert_eq!(
            memo_csv, cold_csv,
            "memoized schedules must replay byte-identically"
        );
        assert_eq!(
            memo_sum, cold_sum,
            "cell digests must not depend on memoization"
        );

        let _ = std::fs::remove_dir_all(&memo_dir);
        let _ = std::fs::remove_dir_all(&cold_dir);
    });
}

#[test]
fn job_count_does_not_change_artifacts_or_log() {
    check("sweep_jobs_parity", 3, |g: &mut Gen| {
        let m = arbitrary_matrix(g);
        let spec = parse_matrix(&m.toml).expect("generated matrix parses");
        let seq_dir = scratch("seq");
        let par_dir = scratch("par");

        let seq = sweep(&spec, &seq_dir, 1, true, None);
        let par = sweep(&spec, &par_dir, 4, true, None);
        assert_eq!(
            seq.log, par.log,
            "cell log must be identical at any job count"
        );
        assert_eq!(seq.events, par.events);

        let (seq_csv, seq_sum) = merged_bytes(&seq_dir);
        let (par_csv, par_sum) = merged_bytes(&par_dir);
        assert_eq!(seq_csv, par_csv);
        assert_eq!(seq_sum, par_sum);

        let _ = std::fs::remove_dir_all(&seq_dir);
        let _ = std::fs::remove_dir_all(&par_dir);
    });
}
