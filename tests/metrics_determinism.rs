//! Telemetry determinism: metric values derive only from simulation
//! state, so two same-seed runs through the same public entry point the
//! `--metrics` flag uses must render byte-identical Prometheus and CSV
//! artifacts — and those artifacts must pass the in-repo validators.
//! Also pins the observation-only invariant: attaching telemetry must
//! not change the run digest.

use odlb::telemetry::{validate_csv, validate_prometheus, SpanProfiler, Telemetry};
use odlb::trace::{DigestSink, Tracer};
use odlb_bench::experiments::fig3;

/// A scaled-down fig3 run with telemetry attached, returning the
/// rendered artifacts and the decision-trace digest.
fn instrumented_run() -> (String, String, u64) {
    let tracer = Tracer::new();
    let digest = tracer.attach(DigestSink::new());
    let telemetry = Telemetry::attached();
    let profiler = SpanProfiler::shared();
    fig3::run_instrumented(tracer, telemetry.clone(), Some(profiler), 12, 4, 20, 150, 2);
    let prom = telemetry.render_prometheus().expect("attached");
    let csv = telemetry.render_csv().expect("attached");
    let d = digest.borrow().digest();
    (prom, csv, d)
}

#[test]
fn same_seed_runs_render_byte_identical_artifacts() {
    let (prom_a, csv_a, digest_a) = instrumented_run();
    let (prom_b, csv_b, digest_b) = instrumented_run();
    assert_eq!(digest_a, digest_b, "same seed must give the same digest");
    assert_eq!(
        prom_a, prom_b,
        "Prometheus artifacts must be byte-identical"
    );
    assert_eq!(csv_a, csv_b, "CSV artifacts must be byte-identical");

    let stats = validate_prometheus(&prom_a).expect("valid exposition");
    assert!(stats.families > 0, "exposition must not be empty");
    assert!(stats.histograms > 0, "latency histograms must be exported");
    let rows = validate_csv(&csv_a).expect("valid csv");
    assert!(rows > 0, "csv must not be empty");

    // Spot-check the figure's key series made it into the exposition.
    for name in [
        "odlb_query_latency_us_bucket",
        "odlb_queries_total",
        "odlb_pool_resident_pages",
        "odlb_instance_queue_depth",
        "odlb_server_cpu_utilisation",
    ] {
        assert!(prom_a.contains(name), "{name} missing from exposition");
    }
}

#[test]
fn attaching_telemetry_does_not_change_the_digest() {
    let tracer = Tracer::new();
    let digest = tracer.attach(DigestSink::new());
    fig3::run_with(tracer, 12, 4, 20, 150, 2);
    let plain = digest.borrow().digest();
    let (_, _, instrumented) = instrumented_run();
    assert_eq!(
        plain, instrumented,
        "telemetry must be observation-only: digests diverged"
    );
}
