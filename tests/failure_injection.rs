//! Failure injection: the control loop must degrade gracefully when the
//! world misbehaves — replicas retired mid-provisioning, empty stable
//! state, no free servers, infeasible quotas, zero-variance populations.

use odlb::cluster::{ProvisionError, Simulation, SimulationConfig};
use odlb::core::{ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb::engine::EngineConfig;
use odlb::metrics::{AppId, ClassId, MetricKind, MetricVector, Sla};
use odlb::outlier::{detect, OutlierConfig};
use odlb::sim::SimDuration;
use odlb::storage::DomainId;
use odlb::workload::tpcw::{tpcw_workload, TpcwConfig};
use odlb::workload::{ClientConfig, LoadFunction};
use std::collections::BTreeMap;

#[test]
fn replica_retired_while_provisioning_never_resurrects() {
    let mut sim = Simulation::new(SimulationConfig::default());
    let s1 = sim.add_server(4);
    sim.add_server(4);
    let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(5),
    );
    sim.assign_replica(app, i1);
    sim.start();
    let pending = sim.provision_replica(app).unwrap();
    // Kill it before its ReplicaReady fires (delay is 20 s; interval 10 s).
    sim.run_interval();
    sim.retire_replica(app, pending);
    for _ in 0..4 {
        sim.run_interval();
        assert_eq!(
            sim.replicas_of(app),
            vec![i1],
            "retired-in-flight replica must not come back"
        );
    }
}

#[test]
fn provisioning_with_no_free_server_fails_cleanly() {
    let mut sim = Simulation::new(SimulationConfig::default());
    let s1 = sim.add_server(4);
    let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(5),
    );
    sim.assign_replica(app, i1);
    assert_eq!(
        sim.provision_replica(app),
        Err(ProvisionError::NoFreeServer)
    );
    // The cluster still runs fine afterwards.
    sim.start();
    let outcome = sim.run_interval();
    assert!(outcome.app_throughput[&app] >= 0.0);
}

#[test]
fn controller_survives_impossible_sla_with_empty_pool() {
    // Impossible SLA, nowhere to grow: the controller must keep running
    // without panicking or acting nonsensically forever.
    let mut sim = Simulation::new(SimulationConfig::default());
    let s1 = sim.add_server(4);
    let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::new(SimDuration::from_micros(1)),
        ClientConfig::default(),
        LoadFunction::Constant(5),
    );
    sim.assign_replica(app, i1);
    sim.start();
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    for _ in 0..10 {
        let outcome = sim.run_interval();
        controller.on_interval(&mut sim, &outcome);
    }
    assert_eq!(sim.replicas_of(app).len(), 1, "nothing to provision from");
}

#[test]
fn detection_with_totally_empty_interval() {
    let current: BTreeMap<ClassId, MetricVector> = BTreeMap::new();
    let report = detect(&OutlierConfig::default(), &current, |_| None);
    assert!(report.is_empty());
    assert!(report.outlier_contexts().is_empty());
    assert!(report.memory_suspects().is_empty());
}

#[test]
fn detection_with_single_class_population() {
    // Quartiles of one point: zero IQR; its own impact is never outside
    // its own fence, so one class alone can't be an outlier.
    let mut current = BTreeMap::new();
    let class = ClassId::new(AppId(0), 0);
    let mut v = MetricVector::from_fn(|_| 10.0);
    v[MetricKind::Latency] = 99.0;
    current.insert(class, v);
    let stable = MetricVector::from_fn(|_| 10.0);
    let report = detect(&OutlierConfig::default(), &current, |_| Some(stable));
    assert!(report.findings.is_empty(), "no population, no outliers");
}

#[test]
fn quota_on_unknown_class_is_rejected_not_fatal() {
    let mut sim = Simulation::new(SimulationConfig::default());
    let s1 = sim.add_server(4);
    let i1 = sim.add_instance(
        s1,
        DomainId(1),
        EngineConfig {
            pool_pages: 64,
            ..Default::default()
        },
    );
    let ghost = ClassId::new(AppId(9), 0);
    // Quota larger than the pool must error, not panic.
    assert!(sim.set_quota(i1, ghost, 1_000).is_err());
    // A valid quota on a never-seen class is fine (it will be used when
    // the class shows up) and clearable.
    assert!(sim.set_quota(i1, ghost, 16).is_ok());
    assert!(sim.clear_quota(i1, ghost));
    assert!(!sim.clear_quota(i1, ghost));
}

#[test]
fn app_with_zero_clients_is_vacuously_stable() {
    let mut sim = Simulation::new(SimulationConfig::default());
    let s1 = sim.add_server(4);
    let i1 = sim.add_instance(s1, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(0),
    );
    sim.assign_replica(app, i1);
    sim.start();
    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    for _ in 0..3 {
        let outcome = sim.run_interval();
        assert!(!outcome.sla[&app].is_violation(), "idle app never violates");
        assert!(controller.on_interval(&mut sim, &outcome).is_empty());
    }
}

#[test]
fn all_classes_deviating_equally_is_not_an_outlier_storm() {
    // A uniform slowdown (e.g. global CPU contention) doubles everyone's
    // latency: no single context stands out, so detection must not flag
    // the whole population as latency outliers.
    let mut current = BTreeMap::new();
    let stable = MetricVector::from_fn(|k| match k {
        MetricKind::Latency => 0.1,
        MetricKind::Throughput => 10.0,
        _ => 100.0,
    });
    let mut cur = stable;
    cur[MetricKind::Latency] = 0.2;
    for t in 0..12 {
        current.insert(ClassId::new(AppId(0), t), cur);
    }
    let report = detect(&OutlierConfig::default(), &current, |_| Some(stable));
    let latency_outliers = report
        .findings
        .values()
        .flatten()
        .filter(|f| f.metric == MetricKind::Latency)
        .count();
    assert_eq!(latency_outliers, 0, "uniform deviation is not an outlier");
}
