//! Trace determinism: the whole point of the run digest is that equal
//! seeds produce byte-identical decision traces, and different seeds
//! produce (in practice) different ones. This exercises the full driver +
//! controller stack under a tracer with all three sink kinds attached.

use odlb::cluster::{Simulation, SimulationConfig};
use odlb::core::{ClusterController, ControllerConfig, SelectiveRetuningController};
use odlb::engine::EngineConfig;
use odlb::metrics::Sla;
use odlb::storage::DomainId;
use odlb::trace::{DigestSink, JsonlSink, RingBufferSink, Tracer};
use odlb::workload::tpcw::{tpcw_workload, TpcwConfig};
use odlb::workload::{ClientConfig, LoadFunction};

/// Runs a small contended scenario end to end, returning the JSONL bytes
/// and the digest of its decision trace.
fn traced_run(seed: u64, intervals: usize) -> (Vec<u8>, u64, u64) {
    let tracer = Tracer::new();
    let jsonl = tracer.attach(JsonlSink::new(Vec::new()));
    let digest = tracer.attach(DigestSink::new());
    let ring = tracer.attach(RingBufferSink::new(10_000));

    let mut sim = Simulation::new(SimulationConfig {
        seed,
        ..Default::default()
    });
    let server = sim.add_server(2);
    let inst = sim.add_instance(server, DomainId(1), EngineConfig::default());
    let app = sim.add_app(
        tpcw_workload(TpcwConfig::default()),
        Sla::one_second(),
        ClientConfig::default(),
        LoadFunction::Constant(40),
    );
    sim.assign_replica(app, inst);
    sim.set_tracer(tracer.clone());
    sim.start();

    let mut controller = SelectiveRetuningController::new(ControllerConfig::default());
    controller.set_tracer(tracer.clone());
    for _ in 0..intervals {
        let outcome = sim.run_interval();
        controller.on_interval(&mut sim, &outcome);
    }
    tracer.flush();

    let events = digest.borrow().events();
    assert_eq!(
        events,
        ring.borrow().seen(),
        "every sink sees the same stream"
    );
    let bytes = jsonl.borrow().writer().clone();
    let d = digest.borrow().digest();
    (bytes, d, events)
}

#[test]
fn equal_seeds_give_byte_identical_traces_and_equal_digests() {
    let (bytes_a, digest_a, events_a) = traced_run(42, 8);
    let (bytes_b, digest_b, events_b) = traced_run(42, 8);
    assert!(events_a > 0, "the run must emit events");
    assert_eq!(events_a, events_b);
    assert_eq!(digest_a, digest_b, "equal seeds must fold to equal digests");
    assert_eq!(bytes_a, bytes_b, "the JSONL streams must be byte-identical");
    // And the digest really is the fold of those bytes.
    assert_eq!(digest_a, odlb::trace::fnv1a64(&bytes_a));
}

#[test]
fn different_seeds_give_different_digests() {
    let (_, digest_a, _) = traced_run(42, 8);
    let (_, digest_b, _) = traced_run(43, 8);
    assert_ne!(
        digest_a, digest_b,
        "different client arrival streams must produce different traces"
    );
}

#[test]
fn trace_jsonl_is_parseable_line_by_line() {
    let (bytes, _, events) = traced_run(42, 4);
    let text = String::from_utf8(bytes).expect("canonical JSON is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, events);
    let mut last_end = 0u64;
    for line in lines {
        assert!(line.starts_with("{\"event\":\""), "line: {line}");
        assert!(line.ends_with('}'), "line: {line}");
        // Events are time-ordered: extract the end_us field.
        let end_us: u64 = line
            .split("\"end_us\":")
            .nth(1)
            .and_then(|rest| {
                rest.chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .expect("every event carries end_us");
        assert!(end_us >= last_end, "events must be time-ordered");
        last_end = end_us;
    }
}
