//! Property tests for `ClassStatsCollector`: closing an interval must
//! conserve what was recorded (counts and sums reappear, scaled, in the
//! report) and must fully reset the accumulator for the next interval.

use odlb::metrics::{AppId, ClassId, ClassStatsCollector, MetricKind, QueryLogRecord};
use odlb::sim::{SimDuration, SimTime};
use odlb_testkit::{check, Gen};
use std::collections::BTreeMap;

fn random_records(g: &mut Gen) -> Vec<QueryLogRecord> {
    g.vec_of(1, 300, |g| {
        let accesses = g.u64_in(1, 500);
        QueryLogRecord {
            class: ClassId::new(AppId(g.u32_in(0, 3)), g.u32_in(0, 10)),
            completed_at: SimTime::from_micros(g.u64_in(0, 10_000_000)),
            latency: SimDuration::from_micros(g.u64_in(100, 2_000_000)),
            page_accesses: accesses,
            buffer_misses: g.u64_in(0, accesses + 1),
            io_requests: g.u64_in(0, accesses + 1),
            readaheads: g.u64_in(0, 64),
            lock_wait: SimDuration::from_micros(g.u64_in(0, 50_000)),
        }
    })
}

/// Closing conserves counts: per class, the report's volume metrics equal
/// the sums of the ingested records, the throughput × duration recovers
/// the query count, and latency is the per-class mean.
#[test]
fn close_interval_conserves_counts() {
    check("close_interval_conserves_counts", 192, |g| {
        let records = random_records(g);
        let end = SimTime::from_secs(g.u64_in(1, 60));
        let mut collector = ClassStatsCollector::new(SimTime::ZERO);
        collector.record_batch(&records);

        // Independent ground truth, accumulated the obvious way.
        #[derive(Default)]
        struct Expect {
            queries: u64,
            latency_sum: f64,
            accesses: u64,
            misses: u64,
            io: u64,
            readaheads: u64,
            lock_wait: f64,
        }
        let mut expected: BTreeMap<ClassId, Expect> = BTreeMap::new();
        for r in &records {
            let e = expected.entry(r.class).or_default();
            e.queries += 1;
            e.latency_sum += r.latency.as_secs_f64();
            e.accesses += r.page_accesses;
            e.misses += r.buffer_misses;
            e.io += r.io_requests;
            e.readaheads += r.readaheads;
            e.lock_wait += r.lock_wait.as_secs_f64();
        }

        let report = collector.close_interval(end);
        assert_eq!(report.per_class.len(), expected.len(), "no class lost");
        let duration = end.as_secs_f64();
        for (class, e) in &expected {
            let v = report.per_class[class];
            let queries = v[MetricKind::Throughput] * duration;
            assert!(
                (queries - e.queries as f64).abs() < 1e-6,
                "{class}: throughput×duration {} vs {} queries",
                queries,
                e.queries
            );
            assert!(
                (v[MetricKind::Latency] - e.latency_sum / e.queries as f64).abs() < 1e-9,
                "{class}: latency mean"
            );
            assert_eq!(v[MetricKind::PageAccesses], e.accesses as f64);
            assert_eq!(v[MetricKind::BufferMisses], e.misses as f64);
            assert_eq!(v[MetricKind::IoRequests], e.io as f64);
            assert_eq!(v[MetricKind::ReadAheads], e.readaheads as f64);
            assert!((v[MetricKind::LockWaits] - e.lock_wait).abs() < 1e-9);
        }
    });
}

/// Closing resets the accumulator: the next interval starts empty and at
/// the previous close time, whatever was recorded before.
#[test]
fn close_interval_resets_accumulator() {
    check("close_interval_resets_accumulator", 192, |g| {
        let records = random_records(g);
        let first_end = SimTime::from_secs(g.u64_in(1, 30));
        let second_end = first_end + SimDuration::from_secs(g.u64_in(1, 30));
        let mut collector = ClassStatsCollector::new(SimTime::ZERO);
        collector.record_batch(&records);
        let first = collector.close_interval(first_end);
        assert!(!first.per_class.is_empty());

        for r in &records {
            assert_eq!(
                collector.queries_for(r.class),
                0,
                "counts must not survive the close"
            );
        }
        let second = collector.close_interval(second_end);
        assert!(
            second.per_class.is_empty(),
            "nothing recorded, nothing reported"
        );
        assert_eq!(second.start, first_end, "next interval opens at the close");
        assert_eq!(second.end, second_end);

        // Recording after a close starts from zero, not from stale sums.
        let r = &records[0];
        collector.record(r);
        assert_eq!(collector.queries_for(r.class), 1);
    });
}
