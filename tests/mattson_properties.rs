//! Property tests for the MRC substrate: the Fenwick-tree Mattson tracker
//! must agree exactly with the naive LRU stack, and the curve must obey
//! the inclusion property that makes the paper's §2 math valid.

use odlb::bufferpool::LruList;
use odlb::mrc::mattson::NaiveStack;
use odlb::mrc::{MattsonTracker, MissRatioCurve};
use odlb::storage::{PageId, SpaceId};
use odlb_testkit::{check, Gen};

fn small_trace(g: &mut Gen) -> Vec<u64> {
    g.vec_of(1, 600, |g| g.u64_in(0, 64))
}

fn skewed_trace(g: &mut Gen) -> Vec<u64> {
    // Mixture of a hot set and a long tail, closer to real workloads.
    g.vec_of(1, 600, |g| {
        if g.weighted(&[3.0, 1.0]) == 0 {
            g.u64_in(0, 16)
        } else {
            g.u64_in(0, 4096)
        }
    })
}

/// The O(log n) tracker must produce exactly the naive stack's
/// distances on every trace.
#[test]
fn fast_tracker_matches_naive() {
    check("fast_tracker_matches_naive", 256, |g| {
        let trace = small_trace(g);
        let mut fast = MattsonTracker::new(4096);
        let mut slow = NaiveStack::new();
        for &k in &trace {
            assert_eq!(fast.access(k), slow.access(k));
        }
    });
}

/// Miss ratio must be monotone non-increasing in memory size — the
/// inclusion property of LRU.
#[test]
fn miss_ratio_is_monotone() {
    check("miss_ratio_is_monotone", 256, |g| {
        let trace = skewed_trace(g);
        let mut tracker = MattsonTracker::new(4096);
        for &k in &trace {
            tracker.access(k);
        }
        let curve = tracker.curve();
        let mut prev = 1.0 + 1e-12;
        for m in (1..=4096).step_by(37) {
            let mr = curve.miss_ratio(m);
            assert!(mr <= prev + 1e-12, "MR({m}) = {mr} > {prev}");
            assert!((0.0..=1.0).contains(&mr));
            prev = mr;
        }
    });
}

/// The MRC must *predict* an actual LRU pool: for any capacity, a
/// touch hits iff the tracked stack distance is within capacity, so
/// the measured miss count equals the curve's prediction exactly.
#[test]
fn curve_predicts_real_lru_pool() {
    check("curve_predicts_real_lru_pool", 256, |g| {
        let trace = skewed_trace(g);
        let cap = g.usize_in(1, 128);
        let mut tracker = MattsonTracker::new(4096);
        let mut lru = LruList::new(cap);
        let mut real_misses = 0u64;
        for &k in &trace {
            let page = PageId::new(SpaceId(0), k);
            if !lru.touch(page) {
                real_misses += 1;
                lru.insert(page);
            }
            tracker.access(k);
        }
        let predicted = tracker.curve().miss_ratio(cap);
        let actual = real_misses as f64 / trace.len() as f64;
        assert!(
            (predicted - actual).abs() < 1e-9,
            "cap {cap}: predicted {predicted} vs actual {actual}"
        );
    });
}

/// Params extraction invariants: acceptable ≤ total ≤ cap, ratios
/// ordered, and the acceptable ratio within threshold of ideal.
#[test]
fn params_invariants() {
    check("params_invariants", 256, |g| {
        let trace = skewed_trace(g);
        let threshold = g.f64_in(0.0, 0.5);
        let mut tracker = MattsonTracker::new(2048);
        for &k in &trace {
            tracker.access(k);
        }
        let p = tracker.curve().params(2048, threshold);
        assert!(p.acceptable_memory_needed <= 2048);
        assert!(p.total_memory_needed <= 2048);
        assert!(p.acceptable_memory_needed >= 1);
        assert!(p.acceptable_miss_ratio + 1e-12 >= p.ideal_miss_ratio);
        assert!(p.acceptable_miss_ratio <= p.ideal_miss_ratio + threshold + 1e-12);
    });
}

/// Merging two curves equals tracking the concatenated counts.
#[test]
fn curve_merge_is_additive() {
    check("curve_merge_is_additive", 256, |g| {
        let a = small_trace(g);
        let b = small_trace(g);
        let run = |t: &[u64]| {
            let mut tr = MattsonTracker::new(256);
            for &k in t {
                tr.access(k);
            }
            tr.into_curve()
        };
        let mut merged: MissRatioCurve = run(&a);
        merged.merge(&run(&b));
        assert_eq!(merged.total_accesses() as usize, a.len() + b.len());
    });
}
