//! Property tests for the MRC substrate: every stack-distance tracker
//! must agree with the naive LRU stack through one shared differential
//! harness, and the curve must obey the inclusion property that makes
//! the paper's §2 math valid.

use odlb::bufferpool::LruList;
use odlb::mrc::mattson::NaiveStack;
use odlb::mrc::{MattsonTracker, MissRatioCurve, SampledTracker};
use odlb::storage::{PageId, SpaceId};
use odlb_testkit::trace::{check_traces, TraceFamily};
use odlb_testkit::{check, Gen};

fn small_trace(g: &mut Gen) -> Vec<u64> {
    g.vec_of(1, 600, |g| g.u64_in(0, 64))
}

fn skewed_trace(g: &mut Gen) -> Vec<u64> {
    // Mixture of a hot set and a long tail, closer to real workloads.
    g.vec_of(1, 600, |g| {
        if g.weighted(&[3.0, 1.0]) == 0 {
            g.u64_in(0, 16)
        } else {
            g.u64_in(0, 4096)
        }
    })
}

/// The shared differential harness: replays `trace` through `access`
/// and the [`NaiveStack`] oracle side by side, asserting identical
/// stack distances on every reference. Any tracker claiming the exact
/// Mattson contract (including [`SampledTracker`] at rate 1.0, whose
/// filter passes everything) plugs in as a closure.
fn assert_tracks_like_naive(
    trace: &[u64],
    label: &str,
    mut access: impl FnMut(u64) -> Option<u64>,
) {
    let mut naive = NaiveStack::new();
    for (i, &k) in trace.iter().enumerate() {
        let got = access(k);
        let want = naive.access(k);
        assert_eq!(got, want, "{label}: reference {i} (key {k}) diverged");
    }
}

/// Both exact trackers — and the sampled tracker with the filter wide
/// open — must produce exactly the naive stack's distances on every
/// trace family the testkit generates.
#[test]
fn trackers_match_naive_oracle() {
    check_traces("trackers_match_naive_oracle", 128, 600, |trace| {
        let mut fast = MattsonTracker::new(4096);
        assert_tracks_like_naive(trace, "mattson", |k| fast.access(k));
        let mut sampled = SampledTracker::new(4096, 1.0);
        assert_tracks_like_naive(trace, "sampled@1.0", |k| sampled.access(k));
    });
}

/// Outgrowing the initial Fenwick tree (and the 4096-slot rebuild
/// floor) must rebuild with ≥2× headroom over the live key count while
/// distances keep matching the oracle exactly.
#[test]
fn slot_capacity_grows_past_fenwick_floor() {
    let mut fast = MattsonTracker::new(64);
    let initial_slots = fast.slot_capacity();
    let mut naive = NaiveStack::new();
    // 6000 distinct keys, each visited twice with a stride so re-access
    // distances are non-trivial, pushes live keys past the 4096 floor.
    let keys = 6_000u64;
    let trace: Vec<u64> = (0..keys)
        .chain((0..keys).map(|i| (i + 17) % keys))
        .chain(0..keys)
        .collect();
    for &k in &trace {
        assert_eq!(fast.access(k), naive.access(k), "diverged at key {k}");
    }
    assert_eq!(fast.distinct_keys(), keys as usize);
    assert!(
        fast.slot_capacity() > initial_slots && fast.slot_capacity() >= 4096,
        "tracker must have rebuilt past its initial {initial_slots} slots, \
         got {}",
        fast.slot_capacity()
    );
    assert!(
        fast.slot_capacity() >= 2 * fast.distinct_keys(),
        "rebuild keeps ≥2x headroom: {} slots for {} keys",
        fast.slot_capacity(),
        fast.distinct_keys()
    );
}

/// Miss ratio must be monotone non-increasing in memory size — the
/// inclusion property of LRU.
#[test]
fn miss_ratio_is_monotone() {
    check("miss_ratio_is_monotone", 256, |g| {
        let trace = skewed_trace(g);
        let mut tracker = MattsonTracker::new(4096);
        for &k in &trace {
            tracker.access(k);
        }
        let curve = tracker.curve();
        let mut prev = 1.0 + 1e-12;
        for m in (1..=4096).step_by(37) {
            let mr = curve.miss_ratio(m);
            assert!(mr <= prev + 1e-12, "MR({m}) = {mr} > {prev}");
            assert!((0.0..=1.0).contains(&mr));
            prev = mr;
        }
    });
}

/// The MRC must *predict* an actual LRU pool: for any capacity, a
/// touch hits iff the tracked stack distance is within capacity, so
/// the measured miss count equals the curve's prediction exactly.
#[test]
fn curve_predicts_real_lru_pool() {
    check("curve_predicts_real_lru_pool", 256, |g| {
        let trace = skewed_trace(g);
        let cap = g.usize_in(1, 128);
        let mut tracker = MattsonTracker::new(4096);
        let mut lru = LruList::new(cap);
        let mut real_misses = 0u64;
        for &k in &trace {
            let page = PageId::new(SpaceId(0), k);
            if !lru.touch(page) {
                real_misses += 1;
                lru.insert(page);
            }
            tracker.access(k);
        }
        let predicted = tracker.curve().miss_ratio(cap);
        let actual = real_misses as f64 / trace.len() as f64;
        assert!(
            (predicted - actual).abs() < 1e-9,
            "cap {cap}: predicted {predicted} vs actual {actual}"
        );
    });
}

/// Params extraction invariants: acceptable ≤ total ≤ cap, ratios
/// ordered, and the acceptable ratio within threshold of ideal.
#[test]
fn params_invariants() {
    check("params_invariants", 256, |g| {
        let trace = skewed_trace(g);
        let threshold = g.f64_in(0.0, 0.5);
        let mut tracker = MattsonTracker::new(2048);
        for &k in &trace {
            tracker.access(k);
        }
        let p = tracker.curve().params(2048, threshold);
        assert!(p.acceptable_memory_needed <= 2048);
        assert!(p.total_memory_needed <= 2048);
        assert!(p.acceptable_memory_needed >= 1);
        assert!(p.acceptable_miss_ratio + 1e-12 >= p.ideal_miss_ratio);
        assert!(p.acceptable_miss_ratio <= p.ideal_miss_ratio + threshold + 1e-12);
    });
}

/// Merging two curves equals tracking the concatenated counts.
#[test]
fn curve_merge_is_additive() {
    check("curve_merge_is_additive", 256, |g| {
        let a = small_trace(g);
        let b = small_trace(g);
        let run = |t: &[u64]| {
            let mut tr = MattsonTracker::new(256);
            for &k in t {
                tr.access(k);
            }
            tr.into_curve()
        };
        let mut merged: MissRatioCurve = run(&a);
        merged.merge(&run(&b));
        assert_eq!(merged.total_accesses() as usize, a.len() + b.len());
    });
}

/// The testkit's named families behave as documented when replayed
/// through the exact tracker: a loop's re-accesses all land at distance
/// `keys`, and a one-pass scan is all cold misses.
#[test]
fn named_families_have_their_signature_distances() {
    let mut g = Gen::from_seed(41);
    let keys = 32u64;
    let t = TraceFamily::Loop { keys }.generate(&mut g, 96);
    let mut tracker = MattsonTracker::new(4096);
    for (i, &k) in t.iter().enumerate() {
        let d = tracker.access(k);
        if i < keys as usize {
            assert_eq!(d, None, "first pass is cold");
        } else {
            assert_eq!(d, Some(keys), "loop re-access distance is the loop length");
        }
    }

    let scan = TraceFamily::SequentialScan { keys: 8192 }.generate(&mut g, 4096);
    let mut tracker = MattsonTracker::new(8192);
    assert!(
        scan.iter().all(|&k| tracker.access(k).is_none()),
        "a one-pass scan never re-references"
    );
}
