//! Property tests for the nested span profiler: randomly generated span
//! programs must leave the stack balanced, self-times must exactly
//! partition each span's inclusive time, the folded dumps must be valid
//! and deterministic, and splitting a workload across several profilers
//! then merging must render the identical sim folded dump — the
//! invariant the parallel experiment runner's per-figure merge rests on.

use odlb_telemetry::{enter_span, span_units, validate_folded, SharedSpanProfiler, SpanProfiler};
use odlb_testkit::{check, Gen};
use std::collections::BTreeMap;
use std::time::Duration;

const NAMES: [&str; 6] = [
    "experiments",
    "interval",
    "controller",
    "mrc_update",
    "engine_execute",
    "storage_read",
];

/// One step of a replayable span program. Programs are data, so the same
/// program can be applied to several profilers and the results compared.
#[derive(Clone, Copy, Debug)]
enum Op {
    Enter(&'static str),
    Exit,
    Units(u64),
}

/// A random well-formed program: every `Enter` is eventually matched by
/// an `Exit`, nesting never exceeds six levels, and unit attributions
/// land at arbitrary points.
fn gen_program(g: &mut Gen) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut depth = 0usize;
    for _ in 0..g.usize_in(1, 120) {
        let choice = if depth == 0 {
            0
        } else if depth >= 6 {
            1 + g.usize_in(0, 2) // exit or units, never deeper
        } else {
            g.weighted(&[3.0, 2.0, 2.0])
        };
        match choice {
            0 => {
                ops.push(Op::Enter(NAMES[g.usize_in(0, NAMES.len())]));
                depth += 1;
            }
            1 => {
                ops.push(Op::Exit);
                depth -= 1;
            }
            _ => ops.push(Op::Units(g.u64_in(0, 1_000))),
        }
    }
    for _ in 0..depth {
        ops.push(Op::Exit);
    }
    ops
}

fn apply(profiler: &mut SpanProfiler, program: &[Op]) {
    for op in program {
        match op {
            Op::Enter(name) => profiler.enter(name),
            Op::Exit => profiler.exit(),
            Op::Units(n) => profiler.add_units(*n),
        }
    }
}

#[test]
fn replayed_programs_fold_deterministically() {
    check("profiler_folded_sim_deterministic", 200, |g: &mut Gen| {
        let program = gen_program(g);
        let mut a = SpanProfiler::new();
        let mut b = SpanProfiler::new();
        apply(&mut a, &program);
        apply(&mut b, &program);
        assert_eq!(a.depth(), 0, "programs are balanced");
        let folded = a.folded_sim();
        assert_eq!(
            folded,
            b.folded_sim(),
            "sim dump depends only on the program"
        );
        let stats = validate_folded(&folded).expect("replayed dump validates");
        assert_eq!(stats.lines, folded.lines().count());
    });
}

#[test]
fn self_time_partitions_inclusive_time() {
    check("profiler_self_time_partition", 200, |g: &mut Gen| {
        let program = gen_program(g);
        let mut p = SpanProfiler::new();
        apply(&mut p, &program);
        let paths: BTreeMap<Vec<&str>, _> = p
            .span_paths()
            .map(|(path, s)| (path.to_vec(), *s))
            .collect();
        for (path, stats) in &paths {
            let children: Duration = paths
                .iter()
                .filter(|(q, _)| q.len() == path.len() + 1 && q[..path.len()] == path[..])
                .map(|(_, s)| s.wall_total)
                .sum();
            assert_eq!(
                stats.wall_total,
                stats.wall_self + children,
                "self + direct children == inclusive, exactly, at {path:?}"
            );
        }
        // The flat report's phase totals are self-time sums, so they can
        // never exceed the total profiled time even with reentrancy.
        let total = p.total();
        for (name, phase) in p.phases() {
            assert!(
                phase.total <= total,
                "flat {name} total {:?} exceeds profiled total {total:?}",
                phase.total
            );
        }
    });
}

#[test]
fn guards_unwind_to_a_balanced_stack() {
    fn run_tree(g: &mut Gen, profiler: &Option<SharedSpanProfiler>, depth: usize) {
        for _ in 0..g.usize_in(0, 4) {
            let _guard = enter_span(profiler, NAMES[g.usize_in(0, NAMES.len())]);
            span_units(profiler, g.u64_in(0, 100));
            if depth < 4 {
                run_tree(g, profiler, depth + 1);
            }
        }
    }
    check("profiler_guards_balance", 200, |g: &mut Gen| {
        let shared = SpanProfiler::shared();
        let opt = Some(shared.clone());
        run_tree(g, &opt, 0);
        let p = shared.borrow();
        assert_eq!(p.depth(), 0, "every guard closed its span");
        let folded = p.folded_sim();
        if !folded.is_empty() {
            validate_folded(&folded).expect("guard-built dump validates");
        }
        // Sim units are exclusive: the per-path unit totals sum to the
        // units attributed plus one per entry, with nothing lost to
        // nesting.
        let entered: u64 = p.span_paths().map(|(_, s)| s.calls).sum();
        let units: u64 = p.span_paths().map(|(_, s)| s.sim_units).sum();
        assert!(units >= entered, "each entry contributes one unit");
    });
}

#[test]
fn split_and_merged_profiles_match_a_single_profiler() {
    check("profiler_merge_equals_single", 200, |g: &mut Gen| {
        let programs: Vec<Vec<Op>> = (0..g.usize_in(1, 5)).map(|_| gen_program(g)).collect();
        let mut single = SpanProfiler::new();
        for program in &programs {
            apply(&mut single, program);
        }
        let mut merged = SpanProfiler::new();
        for program in &programs {
            let mut worker = SpanProfiler::new();
            apply(&mut worker, program);
            merged.merge(&worker);
        }
        assert_eq!(
            merged.folded_sim(),
            single.folded_sim(),
            "per-worker profiles merged by stack path render the single-worker dump"
        );
        let single_paths: Vec<_> = single
            .span_paths()
            .map(|(p, s)| (p.to_vec(), s.calls))
            .collect();
        let merged_paths: Vec<_> = merged
            .span_paths()
            .map(|(p, s)| (p.to_vec(), s.calls))
            .collect();
        assert_eq!(merged_paths, single_paths, "call counts merge losslessly");
    });
}
