//! Differential property suite for the calendar-queue `EventQueue`: the
//! retained `BinaryHeapEventQueue` is the ordering oracle. Whatever the
//! push/pop interleaving, pop order (times, payloads, clock trajectory,
//! peeks, lengths) must be byte-identical between the two — the calendar
//! queue is a pure performance substitution.

use odlb_sim::{BinaryHeapEventQueue, EventQueue, SimDuration, SimTime};
use odlb_testkit::{check, Gen};

/// Randomized push/pop interleavings across several time regimes: dense
/// ties, wide scatter, mostly-increasing arrival patterns (the closed-loop
/// driver's shape), and clustered bursts. Every observable is compared
/// step by step against the heap oracle.
#[test]
fn calendar_queue_matches_heap_oracle_on_random_interleavings() {
    check("eventqueue/differential", 400, |g: &mut Gen| {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapEventQueue::new();
        let ops = g.usize_in(1, 800);
        // Time regime for this case: controls tie density and spread.
        let horizon = [10u64, 1_000, 1_000_000, 40_000_000_000][g.usize_in(0, 3)];
        let mut payload = 0u64;
        for _ in 0..ops {
            if g.chance(0.65) {
                // Push: absolute future time, or a short relative delay
                // (the driver's dominant pattern), occasionally exactly
                // `now` to stress the FIFO tiebreak at the clock.
                let at = match g.usize_in(0, 2) {
                    0 => cal.now() + SimDuration::from_micros(g.u64_in(0, horizon)),
                    1 => SimTime::from_micros(
                        cal.now()
                            .as_micros()
                            .saturating_add(g.u64_in(0, horizon / 2 + 1)),
                    ),
                    _ => cal.now(),
                };
                cal.schedule(at, payload);
                heap.schedule(at, payload);
                payload += 1;
            } else {
                assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged");
                assert_eq!(cal.pop(), heap.pop(), "pop diverged");
                assert_eq!(cal.now(), heap.now(), "clock diverged");
            }
            assert_eq!(cal.len(), heap.len(), "length diverged");
            assert_eq!(cal.is_empty(), heap.is_empty());
        }
        // Drain fully: the tail (with shrink rebuilds) must match too.
        loop {
            assert_eq!(cal.peek_time(), heap.peek_time());
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    });
}

/// The clock never runs backwards, whatever the push sequence — the
/// regression property for the time-travel bug (release builds clamp
/// past scheduling to `now`; debug builds panic, so here every push is
/// kept causal and the clamp path is pinned by the sim crate's own
/// release-gated test).
#[test]
fn clock_is_monotone_over_random_schedules() {
    check("eventqueue/monotone-clock", 200, |g: &mut Gen| {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        let ops = g.usize_in(1, 500);
        for i in 0..ops {
            let magnitude = g.u32_in(0, 30);
            let delay = SimDuration::from_micros(g.u64_in(0, 1 << magnitude));
            q.schedule(q.now() + delay, i);
            if g.chance(0.5) {
                if let Some((t, _)) = q.pop() {
                    assert!(t >= last, "clock went backwards: {t:?} after {last:?}");
                    assert_eq!(q.now(), t);
                    last = t;
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "drain went backwards");
            last = t;
        }
    });
}

/// Equal-timestamp events pop strictly FIFO even when interleaved with
/// pops and spread across rebuilds.
#[test]
fn ties_stay_fifo_across_rebuilds() {
    check("eventqueue/fifo-ties", 100, |g: &mut Gen| {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(g.u64_in(0, 1_000_000));
        let n = g.usize_in(1, 2_000); // crosses several grow thresholds
        for i in 0..n {
            q.schedule(t, i);
        }
        for expect in 0..n {
            let (at, got) = q.pop().expect("queue drained early");
            assert_eq!(at, t);
            assert_eq!(got, expect, "FIFO order broken at {expect}");
        }
        assert!(q.is_empty());
    });
}

/// Large-N determinism: ≥1M events through the calendar queue pop in
/// exactly the order the heap oracle pops them, and two identically-fed
/// calendar queues agree event for event. This is the scale regime the
/// `fig-scale` figure runs at (~1M resident session events).
#[test]
fn one_million_events_pop_identically() {
    let n: u64 = 1_000_000;
    let mut cal = EventQueue::new();
    let mut cal2 = EventQueue::new();
    let mut heap = BinaryHeapEventQueue::new();
    // Deterministic splitmix64 scatter over a ~200s horizon with think-
    // time-like clustering (the fig-scale session regime).
    let mut state = 0x0123_4567_89ab_cdefu64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    for i in 0..n {
        let at = SimTime::from_micros(next() % 200_000_000);
        cal.schedule(at, i);
        cal2.schedule(at, i);
        heap.schedule(at, i);
    }
    assert_eq!(cal.len(), n as usize);
    let mut popped = 0u64;
    let mut last = SimTime::ZERO;
    loop {
        let (a, b, c) = (cal.pop(), cal2.pop(), heap.pop());
        assert_eq!(a, b, "two identically-fed calendar queues diverged");
        assert_eq!(a, c, "calendar diverged from heap oracle");
        match a {
            Some((t, _)) => {
                assert!(t >= last);
                last = t;
                popped += 1;
            }
            None => break,
        }
    }
    assert_eq!(popped, n);
}
