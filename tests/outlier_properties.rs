//! Property tests for the statistical core: quartile/fence invariants and
//! detection behaviour on structured random populations.

use odlb::metrics::{AppId, ClassId, MetricKind, MetricVector};
use odlb::outlier::{detect, quartiles, OutlierConfig};
use odlb_testkit::check;
use std::collections::BTreeMap;

#[test]
fn quartiles_are_ordered_and_within_range() {
    check("quartiles_are_ordered_and_within_range", 256, |g| {
        let values = g.vec_of(1, 200, |g| g.f64_in(-1e6, 1e6));
        let q = quartiles(&values).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(q.q1 <= q.q2 && q.q2 <= q.q3);
        assert!(q.q1 >= min - 1e-9 && q.q3 <= max + 1e-9);
        assert!(q.iqr() >= 0.0);
        let inner = q.fences(1.5);
        let outer = q.fences(3.0);
        assert!(outer.low <= inner.low && inner.high <= outer.high);
    });
}

/// Quartiles are order statistics: permutation invariant.
#[test]
fn quartiles_permutation_invariant() {
    check("quartiles_permutation_invariant", 256, |g| {
        let mut values = g.vec_of(2, 50, |g| g.f64_in(-1e3, 1e3));
        let a = quartiles(&values).unwrap();
        values.reverse();
        values.rotate_left(1);
        let b = quartiles(&values).unwrap();
        assert_eq!(a, b);
    });
}

fn no_outliers_check(baselines: &[(f64, f64, f64)]) {
    let mut current = BTreeMap::new();
    let mut stable = BTreeMap::new();
    for (t, &(lat, tput, vol)) in baselines.iter().enumerate() {
        let v = MetricVector::from_fn(|k| match k {
            MetricKind::Latency => lat,
            MetricKind::Throughput => tput,
            _ => vol,
        });
        let class = ClassId::new(AppId(0), t as u32);
        current.insert(class, v);
        stable.insert(class, v);
    }
    let report = detect(&OutlierConfig::default(), &current, |c| {
        stable.get(&c).copied()
    });
    // Every impact is weight × 1.0; fences over the weights cover the
    // weights themselves only when the weight spread is small. What
    // must NEVER appear is a degradation-direction finding: nothing
    // deviates from its own baseline.
    for findings in report.findings.values() {
        for f in findings {
            assert!(
                !(f.metric == MetricKind::Latency && f.indicates_degradation()),
                "latency did not move yet {f:?} flagged as degradation"
            );
        }
    }
}

/// A population of classes that all behave exactly like their stable
/// baselines contains no outliers, whatever the baselines are.
#[test]
fn no_outliers_when_nothing_deviates() {
    check("no_outliers_when_nothing_deviates", 256, |g| {
        let baselines = g.vec_of(4, 30, |g| {
            (
                g.f64_in(0.01, 10.0),
                g.f64_in(1.0, 100.0),
                g.f64_in(1.0, 1e5),
            )
        });
        no_outliers_check(&baselines);
    });
}

/// The shrunk counterexample proptest once found for
/// `no_outliers_when_nothing_deviates` (a weight-dominated finding on a
/// stable population must not read as degradation), preserved as an
/// explicit regression case.
#[test]
fn no_outliers_regression_weight_dominated_population() {
    no_outliers_check(&[
        (6.545941013269372, 1.0, 1.0),
        (9.981702316230402, 1.0, 1.0),
        (6.316396189145635, 1.0, 1.0),
        (7.096532297396459, 1.0, 1.0),
    ]);
}

/// Detection is deterministic: same inputs, same report.
#[test]
fn detection_is_deterministic() {
    check("detection_is_deterministic", 256, |g| {
        let seeds = g.vec_of(4, 20, |g| (g.f64_in(0.1, 5.0), g.f64_in(0.1, 5.0)));
        let mut current = BTreeMap::new();
        let mut stable = BTreeMap::new();
        for (t, &(a, b)) in seeds.iter().enumerate() {
            let class = ClassId::new(AppId(0), t as u32);
            current.insert(class, MetricVector::from_fn(|_| a * (t + 1) as f64));
            stable.insert(class, MetricVector::from_fn(|_| b * (t + 1) as f64));
        }
        let r1 = detect(&OutlierConfig::default(), &current, |c| {
            stable.get(&c).copied()
        });
        let r2 = detect(&OutlierConfig::default(), &current, |c| {
            stable.get(&c).copied()
        });
        assert_eq!(r1.outlier_contexts(), r2.outlier_contexts());
        assert_eq!(r1.new_classes, r2.new_classes);
    });
}

/// An extreme deviation on one class in an otherwise uniform
/// population is always found, at any reasonable fence setting.
#[test]
fn gross_outlier_always_found() {
    check("gross_outlier_always_found", 256, |g| {
        let n = g.u32_in(8, 40);
        let inner = g.f64_in(0.5, 3.0);
        let blowup = g.f64_in(50.0, 1e4);
        let base = MetricVector::from_fn(|_| 100.0);
        let mut current: BTreeMap<ClassId, MetricVector> =
            (0..n).map(|t| (ClassId::new(AppId(0), t), base)).collect();
        let mut hot = base;
        hot[MetricKind::BufferMisses] = 100.0 * blowup;
        let culprit = ClassId::new(AppId(0), n);
        current.insert(culprit, hot);
        let config = OutlierConfig {
            inner_multiplier: inner,
            outer_multiplier: inner * 2.0,
            ..Default::default()
        };
        let report = detect(&config, &current, |_| Some(base));
        assert!(report.outlier_contexts().contains(&culprit));
        assert!(report.memory_suspects().contains(&culprit));
    });
}
