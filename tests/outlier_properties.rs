//! Property tests for the statistical core: quartile/fence invariants and
//! detection behaviour on structured random populations.

use odlb::metrics::{AppId, ClassId, MetricKind, MetricVector};
use odlb::outlier::{detect, quartiles, OutlierConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #[test]
    fn quartiles_are_ordered_and_within_range(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let q = quartiles(&values).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q.q1 <= q.q2 && q.q2 <= q.q3);
        prop_assert!(q.q1 >= min - 1e-9 && q.q3 <= max + 1e-9);
        prop_assert!(q.iqr() >= 0.0);
        let inner = q.fences(1.5);
        let outer = q.fences(3.0);
        prop_assert!(outer.low <= inner.low && inner.high <= outer.high);
    }

    /// Quartiles are order statistics: permutation invariant.
    #[test]
    fn quartiles_permutation_invariant(mut values in prop::collection::vec(-1e3f64..1e3, 2..50)) {
        let a = quartiles(&values).unwrap();
        values.reverse();
        values.rotate_left(1);
        let b = quartiles(&values).unwrap();
        prop_assert_eq!(a, b);
    }

    /// A population of classes that all behave exactly like their stable
    /// baselines contains no outliers, whatever the baselines are.
    #[test]
    fn no_outliers_when_nothing_deviates(
        baselines in prop::collection::vec((0.01f64..10.0, 1.0f64..100.0, 1.0f64..1e5), 4..30)
    ) {
        let mut current = BTreeMap::new();
        let mut stable = BTreeMap::new();
        for (t, &(lat, tput, vol)) in baselines.iter().enumerate() {
            let v = MetricVector::from_fn(|k| match k {
                MetricKind::Latency => lat,
                MetricKind::Throughput => tput,
                _ => vol,
            });
            let class = ClassId::new(AppId(0), t as u32);
            current.insert(class, v);
            stable.insert(class, v);
        }
        let report = detect(&OutlierConfig::default(), &current, |c| stable.get(&c).copied());
        // Every impact is weight × 1.0; fences over the weights cover the
        // weights themselves only when the weight spread is small. What
        // must NEVER appear is a degradation-direction finding: nothing
        // deviates from its own baseline.
        for findings in report.findings.values() {
            for f in findings {
                prop_assert!(
                    !(f.metric == MetricKind::Latency && f.indicates_degradation()),
                    "latency did not move yet {f:?} flagged as degradation"
                );
            }
        }
    }

    /// Detection is deterministic: same inputs, same report.
    #[test]
    fn detection_is_deterministic(
        seeds in prop::collection::vec((0.1f64..5.0, 0.1f64..5.0), 4..20)
    ) {
        let mut current = BTreeMap::new();
        let mut stable = BTreeMap::new();
        for (t, &(a, b)) in seeds.iter().enumerate() {
            let class = ClassId::new(AppId(0), t as u32);
            current.insert(class, MetricVector::from_fn(|_| a * (t + 1) as f64));
            stable.insert(class, MetricVector::from_fn(|_| b * (t + 1) as f64));
        }
        let r1 = detect(&OutlierConfig::default(), &current, |c| stable.get(&c).copied());
        let r2 = detect(&OutlierConfig::default(), &current, |c| stable.get(&c).copied());
        prop_assert_eq!(r1.outlier_contexts(), r2.outlier_contexts());
        prop_assert_eq!(r1.new_classes, r2.new_classes);
    }

    /// An extreme deviation on one class in an otherwise uniform
    /// population is always found, at any reasonable fence setting.
    #[test]
    fn gross_outlier_always_found(
        n in 8u32..40,
        inner in 0.5f64..3.0,
        blowup in 50.0f64..1e4,
    ) {
        let base = MetricVector::from_fn(|_| 100.0);
        let mut current: BTreeMap<ClassId, MetricVector> = (0..n)
            .map(|t| (ClassId::new(AppId(0), t), base))
            .collect();
        let mut hot = base;
        hot[MetricKind::BufferMisses] = 100.0 * blowup;
        let culprit = ClassId::new(AppId(0), n);
        current.insert(culprit, hot);
        let config = OutlierConfig {
            inner_multiplier: inner,
            outer_multiplier: inner * 2.0,
            ..Default::default()
        };
        let report = detect(&config, &current, |_| Some(base));
        prop_assert!(report.outlier_contexts().contains(&culprit));
        prop_assert!(report.memory_suspects().contains(&culprit));
    }
}
