//! Property tests for the scheduler tier's replication invariants.

use odlb::cluster::{InstanceId, Scheduler};
use odlb::metrics::{AppId, ClassId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Add(u32),
    Remove(u32),
    Place { class: u32, targets: Vec<u32> },
    Unplace(u32),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            2 => (0u32..12).prop_map(Op::Add),
            1 => (0u32..12).prop_map(Op::Remove),
            2 => (0u32..8, prop::collection::vec(0u32..12, 0..4))
                .prop_map(|(class, targets)| Op::Place { class, targets }),
            1 => (0u32..8).prop_map(Op::Unplace),
        ],
        1..120,
    )
}

proptest! {
    /// After any operation sequence:
    /// * every class placement is a subset of the live replica set;
    /// * a write reaches every live replica exactly once;
    /// * a read goes to a replica in the class's placement.
    #[test]
    fn replication_invariants(ops in ops()) {
        let app = AppId(0);
        let mut sched = Scheduler::new(app, vec![InstanceId(0)]);
        for op in ops {
            match op {
                Op::Add(i) => sched.add_replica(InstanceId(i)),
                Op::Remove(i) => sched.remove_replica(InstanceId(i)),
                Op::Place { class, targets } => sched.place_class(
                    ClassId::new(app, class),
                    targets.into_iter().map(InstanceId).collect(),
                ),
                Op::Unplace(class) => sched.unplace_class(ClassId::new(app, class)),
            }

            let replicas: Vec<InstanceId> = sched.replicas().to_vec();
            for class in sched.pinned_classes() {
                for inst in sched.placement_of(class) {
                    prop_assert!(
                        replicas.contains(inst),
                        "placement of {class} contains dead {inst}"
                    );
                }
                prop_assert!(!sched.placement_of(class).is_empty());
            }

            let class = ClassId::new(app, 3);
            match sched.route_write(class, |i| i.0 as usize % 3) {
                Some(route) => {
                    let mut all = route.applies.clone();
                    all.push(route.primary);
                    all.sort();
                    all.dedup();
                    let mut live = replicas.clone();
                    live.sort();
                    prop_assert_eq!(all, live, "write-all must cover the replica set");
                    prop_assert!(sched.placement_of(class).contains(&route.primary));
                }
                None => prop_assert!(replicas.is_empty()),
            }
            if let Some(read) = sched.route_read(class, |_| 0) {
                prop_assert!(sched.placement_of(class).contains(&read));
            }
        }
    }

    /// The read router picks a minimum-load replica from the placement.
    #[test]
    fn read_routing_is_least_loaded(
        loads in prop::collection::vec(0usize..100, 1..10)
    ) {
        let app = AppId(0);
        let replicas: Vec<InstanceId> = (0..loads.len() as u32).map(InstanceId).collect();
        let sched = Scheduler::new(app, replicas);
        let class = ClassId::new(app, 0);
        let chosen = sched.route_read(class, |i| loads[i.0 as usize]).unwrap();
        let min = loads.iter().min().unwrap();
        prop_assert_eq!(loads[chosen.0 as usize], *min);
    }
}
