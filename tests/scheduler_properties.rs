//! Property tests for the scheduler tier's replication invariants.

use odlb::cluster::{InstanceId, Scheduler};
use odlb::metrics::{AppId, ClassId};
use odlb_testkit::{check, Gen};

#[derive(Clone, Debug)]
enum Op {
    Add(u32),
    Remove(u32),
    Place { class: u32, targets: Vec<u32> },
    Unplace(u32),
}

fn ops(g: &mut Gen) -> Vec<Op> {
    g.vec_of(1, 120, |g| match g.weighted(&[2.0, 1.0, 2.0, 1.0]) {
        0 => Op::Add(g.u32_in(0, 12)),
        1 => Op::Remove(g.u32_in(0, 12)),
        2 => Op::Place {
            class: g.u32_in(0, 8),
            targets: g.vec_of(0, 4, |g| g.u32_in(0, 12)),
        },
        _ => Op::Unplace(g.u32_in(0, 8)),
    })
}

/// After any operation sequence:
/// * every class placement is a subset of the live replica set;
/// * a write reaches every live replica exactly once;
/// * a read goes to a replica in the class's placement.
#[test]
fn replication_invariants() {
    check("replication_invariants", 256, |g| {
        let app = AppId(0);
        let mut sched = Scheduler::new(app, vec![InstanceId(0)]);
        for op in ops(g) {
            match op {
                Op::Add(i) => sched.add_replica(InstanceId(i)),
                Op::Remove(i) => sched.remove_replica(InstanceId(i)),
                Op::Place { class, targets } => sched.place_class(
                    ClassId::new(app, class),
                    targets.into_iter().map(InstanceId).collect(),
                ),
                Op::Unplace(class) => sched.unplace_class(ClassId::new(app, class)),
            }

            let replicas: Vec<InstanceId> = sched.replicas().to_vec();
            for class in sched.pinned_classes() {
                for inst in sched.placement_of(class) {
                    assert!(
                        replicas.contains(inst),
                        "placement of {class} contains dead {inst}"
                    );
                }
                assert!(!sched.placement_of(class).is_empty());
            }

            let class = ClassId::new(app, 3);
            match sched.route_write(class, |i| i.0 as usize % 3) {
                Some(route) => {
                    let mut all = route.applies.clone();
                    all.push(route.primary);
                    all.sort();
                    all.dedup();
                    let mut live = replicas.clone();
                    live.sort();
                    assert_eq!(all, live, "write-all must cover the replica set");
                    assert!(sched.placement_of(class).contains(&route.primary));
                }
                None => assert!(replicas.is_empty()),
            }
            if let Some(read) = sched.route_read(class, |_| 0) {
                assert!(sched.placement_of(class).contains(&read));
            }
        }
    });
}

/// The read router picks a minimum-load replica from the placement.
#[test]
fn read_routing_is_least_loaded() {
    check("read_routing_is_least_loaded", 256, |g| {
        let loads = g.vec_of(1, 10, |g| g.usize_in(0, 100));
        let app = AppId(0);
        let replicas: Vec<InstanceId> = (0..loads.len() as u32).map(InstanceId).collect();
        let sched = Scheduler::new(app, replicas);
        let class = ClassId::new(app, 0);
        let chosen = sched.route_read(class, |i| loads[i.0 as usize]).unwrap();
        let min = loads.iter().min().unwrap();
        assert_eq!(loads[chosen.0 as usize], *min);
    });
}
