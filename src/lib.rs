//! # odlb — outlier detection for fine-grained load balancing in database clusters
//!
//! Facade crate re-exporting the whole workspace API. Reproduction of
//! Chen, Soundararajan, Mihailescu & Amza, *"Outlier Detection for
//! Fine-grained Load Balancing in Database Clusters"* (ICDE 2007).
//!
//! Start with [`core`] (the selective-retuning controller — the paper's
//! contribution), or see the `examples/` directory for runnable scenarios.

pub use odlb_bufferpool as bufferpool;
pub use odlb_cluster as cluster;
pub use odlb_core as core;
pub use odlb_engine as engine;
pub use odlb_metrics as metrics;
pub use odlb_mrc as mrc;
pub use odlb_outlier as outlier;
pub use odlb_sim as sim;
pub use odlb_storage as storage;
pub use odlb_telemetry as telemetry;
pub use odlb_trace as trace;
pub use odlb_workload as workload;
